package graph

import (
	"strings"
	"testing"

	"orpheus/internal/tensor"
)

func init() {
	// Minimal shape functions for the ops used by these tests. The real
	// registry is populated by internal/ops; unit tests here stay
	// self-contained.
	RegisterShapeFn("testRelu", func(n *Node) ([][]int, error) {
		return [][]int{append([]int(nil), n.Inputs[0].Shape...)}, nil
	})
	RegisterShapeFn("testAdd", func(n *Node) ([][]int, error) {
		return [][]int{append([]int(nil), n.Inputs[0].Shape...)}, nil
	})
}

func buildDiamond(t *testing.T) (*Graph, *Value) {
	t.Helper()
	g := New("diamond")
	x, err := g.Input("x", []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.Add("testRelu", "a", nil, x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Add("testRelu", "b", nil, x)
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.Add("testAdd", "sum", nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.MarkOutput(s); err != nil {
		t.Fatal(err)
	}
	return g, s
}

func TestBuildAndFinalize(t *testing.T) {
	g, out := buildDiamond(t)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(out.Shape, []int{1, 4}) {
		t.Fatalf("output shape = %v", out.Shape)
	}
	if len(g.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(g.Nodes))
	}
}

func TestRebatchPropagatesLeadingDim(t *testing.T) {
	g, out := buildDiamond(t)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if !g.Inputs[0].Batched {
		t.Fatal("non-scalar input not marked Batched")
	}
	if err := g.Rebatch(5); err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(g.Inputs[0].Shape, []int{5, 4}) || !tensor.ShapeEq(out.Shape, []int{5, 4}) {
		t.Fatalf("shapes after Rebatch(5): in %v out %v", g.Inputs[0].Shape, out.Shape)
	}
	// Back down: the batch is symbolic, not sticky.
	if err := g.Rebatch(1); err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(out.Shape, []int{1, 4}) {
		t.Fatalf("shapes after Rebatch(1): out %v", out.Shape)
	}
	if err := g.Rebatch(0); err == nil {
		t.Fatal("Rebatch(0) accepted")
	}
	// Unbatched inputs are left alone.
	g.Inputs[0].Batched = false
	if err := g.Rebatch(3); err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(g.Inputs[0].Shape, []int{1, 4}) {
		t.Fatalf("unbatched input rescaled: %v", g.Inputs[0].Shape)
	}
}

func TestCloneKeepsBatchedMark(t *testing.T) {
	g, _ := buildDiamond(t)
	c := g.Clone()
	if !c.Inputs[0].Batched {
		t.Fatal("Clone dropped the Batched mark")
	}
}

func TestDuplicateValueName(t *testing.T) {
	g := New("dup")
	if _, err := g.Input("x", []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Input("x", []int{1}); err == nil {
		t.Fatal("duplicate input name accepted")
	}
	if _, err := g.Const("", tensor.New(1)); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestForeignValueRejected(t *testing.T) {
	g1 := New("g1")
	x1, _ := g1.Input("x", []int{1})
	g2 := New("g2")
	if _, err := g2.Add("testRelu", "r", nil, x1); err == nil {
		t.Fatal("foreign value accepted as input")
	}
	if err := g2.MarkOutput(x1); err == nil {
		t.Fatal("foreign value accepted as output")
	}
}

func TestTopoSortOrdersDependencies(t *testing.T) {
	g, _ := buildDiamond(t)
	// Scramble: move the sum node first.
	g.Nodes[0], g.Nodes[2] = g.Nodes[2], g.Nodes[0]
	if err := g.TopoSort(); err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range g.Nodes {
		pos[n.Name] = i
	}
	if pos["sum"] < pos["a"] || pos["sum"] < pos["b"] {
		t.Fatalf("topo order wrong: %v", pos)
	}
}

func TestCycleDetected(t *testing.T) {
	g := New("cyc")
	x, _ := g.Input("x", []int{1})
	a, _ := g.Add("testRelu", "a", nil, x)
	b, _ := g.Add("testRelu", "b", nil, a)
	// Manually create a cycle a <- b.
	g.Nodes[0].Inputs[0] = b
	_ = g.MarkOutput(b)
	if err := g.TopoSort(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestValidateCatchesMissingOutput(t *testing.T) {
	g := New("noout")
	x, _ := g.Input("x", []int{1})
	_, _ = g.Add("testRelu", "a", nil, x)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "no outputs") {
		t.Fatalf("missing graph output not caught: %v", err)
	}
}

func TestRemoveNodeAndReplaceUses(t *testing.T) {
	g, _ := buildDiamond(t)
	var aNode *Node
	for _, n := range g.Nodes {
		if n.Name == "a" {
			aNode = n
		}
	}
	// a is consumed by sum: removal must fail.
	if err := g.RemoveNode(aNode); err == nil {
		t.Fatal("removing consumed node should fail")
	}
	// Rewire uses of a's output to x, then removal succeeds.
	g.ReplaceUses(aNode.Outputs[0], g.Inputs[0])
	if err := g.RemoveNode(aNode); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 2 {
		t.Fatalf("nodes after removal = %d", len(g.Nodes))
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveGraphOutputRejected(t *testing.T) {
	g, _ := buildDiamond(t)
	var sum *Node
	for _, n := range g.Nodes {
		if n.Name == "sum" {
			sum = n
		}
	}
	if err := g.RemoveNode(sum); err == nil {
		t.Fatal("removing the node producing a graph output should fail")
	}
}

func TestConsumers(t *testing.T) {
	g, _ := buildDiamond(t)
	cons := g.Consumers()
	if len(cons[g.Inputs[0]]) != 2 {
		t.Fatalf("x should have 2 consumers, got %d", len(cons[g.Inputs[0]]))
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g, _ := buildDiamond(t)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not affect the original.
	c.Nodes[0].Attrs["k"] = 1
	if g.Nodes[0].Attrs.Has("k") {
		t.Fatal("clone shares attrs with original")
	}
	if len(c.Nodes) != len(g.Nodes) || len(c.Inputs) != 1 || len(c.Outputs) != 1 {
		t.Fatal("clone structure differs")
	}
	if c.Value("x") == g.Value("x") {
		t.Fatal("clone shares Value pointers")
	}
}

func TestNumParamsAndOpCounts(t *testing.T) {
	g := New("params")
	x, _ := g.Input("x", []int{1, 3})
	w, _ := g.Const("w", tensor.New(3, 3))
	s, _ := g.Add("testAdd", "s", nil, x, w)
	_ = g.MarkOutput(s)
	if g.NumParams() != 9 {
		t.Fatalf("NumParams = %d", g.NumParams())
	}
	if g.OpCounts()["testAdd"] != 1 {
		t.Fatalf("OpCounts = %v", g.OpCounts())
	}
	if !strings.Contains(g.String(), "params") {
		t.Fatalf("String = %q", g.String())
	}
}

func TestInferShapesUnknownOp(t *testing.T) {
	g := New("unknown")
	x, _ := g.Input("x", []int{1})
	y, _ := g.Add("noSuchOp", "n", nil, x)
	_ = g.MarkOutput(y)
	if err := g.Finalize(); err == nil || !strings.Contains(err.Error(), "no shape function") {
		t.Fatalf("unknown op not caught: %v", err)
	}
}

func TestAttrsGetters(t *testing.T) {
	a := Attrs{"i": 3, "is": []int{1, 2}, "f": 2.5, "s": "x", "b": true}
	if a.Int("i", 0) != 3 || a.Int("missing", 7) != 7 {
		t.Fatal("Int getter wrong")
	}
	if got := a.Ints("is", nil); len(got) != 2 || got[1] != 2 {
		t.Fatal("Ints getter wrong")
	}
	if a.Float("f", 0) != 2.5 || a.Float("i", 0) != 3 {
		t.Fatal("Float getter wrong (or int widening broken)")
	}
	if a.Str("s", "") != "x" || !a.Bool("b", false) || !a.Has("i") || a.Has("zz") {
		t.Fatal("Str/Bool/Has wrong")
	}
	c := a.Clone()
	c["i"] = 9
	if a.Int("i", 0) != 3 {
		t.Fatal("Clone aliases map")
	}
}

func TestAttrsTypeMismatchPanics(t *testing.T) {
	a := Attrs{"i": "oops"}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch did not panic")
		}
	}()
	a.Int("i", 0)
}
