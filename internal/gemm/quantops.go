package gemm

// Activation-quantization helpers for the int8 tier's pack boundary.
//
// The quantizing pack sources scan a layer input once for its range and
// then convert it to uint8 in bulk, so the im2col pack walk degenerates
// to byte copies: a 3x3 convolution visits every input pixel ~9 times,
// and quantizing inside the walk was measured to cost several times the
// int8 GEMM itself on small-K layers. Both helpers dispatch to AVX2
// implementations on amd64 and fall back to portable Go elsewhere.

// minMaxImpl / quantizeU8Impl are swapped by platform init functions.
var (
	minMaxImpl     = minMaxF32Go
	quantizeU8Impl = quantizeU8Go
)

// MinMaxF32 returns the minimum and maximum of v. An empty slice returns
// (0, 0). Inputs are assumed NaN-free (model activations).
func MinMaxF32(v []float32) (lo, hi float32) {
	if len(v) == 0 {
		return 0, 0
	}
	return minMaxImpl(v)
}

// QuantizeU8 converts src to asymmetric uint8 in bulk:
//
//	dst[i] = clamp(int32(src[i]*inv + zf), 0, 255)
//
// where inv is the reciprocal scale and zf is the zero point plus 0.5
// (folding round-to-nearest into the truncating conversion). dst must
// hold at least len(src) bytes. The vectorised path truncates with
// CVTTPS2DQ and clamps by pack saturation, matching the portable loop
// bit for bit on NaN-free inputs.
func QuantizeU8(dst []byte, src []float32, inv, zf float32) {
	quantizeU8Impl(dst, src, inv, zf)
}

func minMaxF32Go(v []float32) (lo, hi float32) {
	lo, hi = v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func quantizeU8Go(dst []byte, src []float32, inv, zf float32) {
	for i, x := range src {
		q := int32(x*inv + zf)
		if q < 0 {
			q = 0
		} else if q > 255 {
			q = 255
		}
		dst[i] = byte(q)
	}
}
