// doclint fails when exported identifiers lack doc comments. It is the
// CI godoc gate for the packages whose API surface the architecture docs
// promise is fully documented:
//
//	go run ./internal/tools/doclint . ./internal/gemm ./internal/runtime ./internal/serve
//
// Each argument is one package directory (non-recursive). For every
// exported func, method (on an exported receiver), type, const and var,
// the declaration — or, for grouped const/var/type blocks, the enclosing
// block — must carry a doc comment. Each package must also have a package
// comment. Violations are listed as file:line and the exit status is 1.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package-dir> [package-dir...]")
		os.Exit(2)
	}
	var bad int
	for _, dir := range dirs {
		missing, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifier(s) without doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one package directory and returns "file:line: message"
// entries for every undocumented exported identifier.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			missing = append(missing, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			missing = append(missing, lintFile(fset, name, f)...)
		}
	}
	return missing, nil
}

// lintFile reports undocumented exported declarations in one file.
func lintFile(fset *token.FileSet, filename string, f *ast.File) []string {
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			report(d.Pos(), kind, d.Name.Name)
		case *ast.GenDecl:
			lintGenDecl(d, report)
		}
	}
	return missing
}

// lintGenDecl checks a const/var/type block: a doc comment on the block
// covers every spec in it; otherwise each exported spec needs its own.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Doc != nil || d.Tok == token.IMPORT {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether a method receiver names an exported
// type (methods on unexported types are internal API).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
