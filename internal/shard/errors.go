package shard

import (
	"errors"
	"fmt"
)

// Typed sentinels for the shard transport. Every error the package
// returns wraps exactly one of these, so callers branch with errors.Is
// instead of string matching — the same contract the runtime and serve
// layers follow.
var (
	// ErrHandshake marks a failed stage handshake: version skew, model
	// mismatch, boundary tensors that don't line up, or a malformed
	// hello/welcome frame.
	ErrHandshake = errors.New("shard: handshake failed")

	// ErrProtocol marks a malformed frame after the handshake — bad
	// magic, unknown type, nonzero reserved bits, or a payload that
	// doesn't parse. A protocol error poisons the connection; the peer
	// must reconnect.
	ErrProtocol = errors.New("shard: protocol error")

	// ErrPeerClosed marks a connection lost mid-stream. Requests in
	// flight on it fail with this; the transport reconnects with backoff
	// for subsequent traffic.
	ErrPeerClosed = errors.New("shard: peer closed")

	// ErrDraining is returned for work submitted after Close began:
	// in-flight requests finish, new ones are refused.
	ErrDraining = errors.New("shard: draining")

	// ErrRemote marks a failure on another stage of the pipeline,
	// propagated downstream as an error frame. The concrete value is a
	// *RemoteError carrying the failing shard and its message.
	ErrRemote = errors.New("shard: remote stage failed")
)

// RemoteError is the unwrapped form of ErrRemote: a failure that
// happened on another stage and travelled the pipeline as an error
// frame, keyed to the request's sequence id.
type RemoteError struct {
	// Shard is the 0-based index of the stage that failed.
	Shard int
	// Code is a stable machine-readable cause ("run", "timeout",
	// "panic", "decode").
	Code string
	// Msg is the human-readable detail from the failing stage.
	Msg string
}

// Error formats the remote failure with its origin stage.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("shard: stage %d failed (%s): %s", e.Shard, e.Code, e.Msg)
}

// Is reports true for ErrRemote, so errors.Is(err, ErrRemote) matches
// any propagated stage failure regardless of origin.
func (e *RemoteError) Is(target error) bool { return target == ErrRemote }
