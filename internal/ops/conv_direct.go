package ops

import (
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// conv.direct — the textbook seven-loop convolution. It supports every
// attribute combination (groups, dilation, asymmetric padding) and both
// data layouts (NCHW and NHWC differ only in index strides here), making
// it the correctness reference for all other conv kernels. DarkNet-style
// frameworks run convolution this way, which is why the darknet-sim
// backend selects it.
func init() {
	RegisterReference(NewOverwritingKernel("conv.direct", "Conv", nil, runConvDirect))
}

func runConvDirect(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	p, err := resolveConvRT(n, in)
	if err != nil {
		return err
	}
	x := in[0].Data()
	w := in[1].Data()
	var bias []float32
	if p.hasBias {
		bias = in[2].Data()
	}
	y := out[0].Data()

	// Layout enters only through the index strides: (channel, row, col)
	// element strides for the input and output tensors.
	xsC, xsY, xsX := p.h*p.w, p.w, 1
	if p.layout == "nhwc" && !p.srcNCHW {
		xsC, xsY, xsX = 1, p.w*p.cin, p.cin
	}
	ysC, ysY, ysX := p.oh*p.ow, p.ow, 1
	if p.layout == "nhwc" {
		ysC, ysY, ysX = 1, p.ow*p.cout, p.cout
	}

	cinG := p.cin / p.groups
	coutG := p.cout / p.groups
	for b := 0; b < p.n; b++ {
		xb := x[b*p.cin*p.h*p.w:]
		yb := y[b*p.cout*p.oh*p.ow:]
		for g := 0; g < p.groups; g++ {
			for ocg := 0; ocg < coutG; ocg++ {
				oc := g*coutG + ocg
				var bv float32
				if bias != nil {
					bv = bias[oc]
				}
				for oy := 0; oy < p.oh; oy++ {
					for ox := 0; ox < p.ow; ox++ {
						acc := bv
						for icg := 0; icg < cinG; icg++ {
							ic := g*cinG + icg
							for ky := 0; ky < p.kh; ky++ {
								iy := oy*p.sh - p.padT + ky*p.dh
								if iy < 0 || iy >= p.h {
									continue
								}
								for kx := 0; kx < p.kw; kx++ {
									ix := ox*p.sw - p.padL + kx*p.dw
									if ix < 0 || ix >= p.w {
										continue
									}
									xv := xb[ic*xsC+iy*xsY+ix*xsX]
									wv := w[((oc*cinG+icg)*p.kh+ky)*p.kw+kx]
									acc += xv * wv
								}
							}
						}
						yb[oc*ysC+oy*ysY+ox*ysX] = acc
					}
				}
			}
		}
	}
	ctx.Sweep(y, nil, p.n*p.cout, p.oh*p.ow, p.activation, p.alpha)
	return nil
}
