// orpheus-serve hosts models behind an HTTP inference API — the
// deployment-side counterpart of the paper's Python bindings. It speaks
// JSON and the binary tensor wire format (internal/wire), negotiated per
// request by Content-Type/Accept.
//
// Usage:
//
//	orpheus-serve -zoo wrn-40-2 -addr :8080
//	orpheus-serve -model mobilenet.onnx -backend tvm-sim
//	orpheus-serve -model main=wrn-40-2.onnx -model canary=wrn-16-1.onnx \
//	              -priority main=1 -priority canary=0      # multi-model, tiered shedding
//	orpheus-serve -zoo mobilenet-v1 -max-batch 8 -flush-ms 2   # dynamic batching
//	orpheus-serve -zoo mobilenet-v1 -max-batch 8 -flush-ms 0   # immediate flush
//
//	curl localhost:8080/models
//	curl -X POST localhost:8080/predict/wrn-40-2 \
//	     -H 'Content-Type: application/json' \
//	     -d '{"input": [ ...3072 floats... ], "topk": 5}'
//	curl -X POST 'localhost:8080/models/wrn-40-2/predict?topk=5' \
//	     -H 'Content-Type: application/x-orpheus-tensor' \
//	     --data-binary @sample.bin
//
// -model is repeatable and takes PATH or NAME=PATH; -zoo hosts built-ins
// alongside. -priority NAME=N tiers the models under -max-inflight:
// lower-priority models shed (429) first as the server fills.
//
// The server is bounded by default: -queue-depth and -max-inflight shed
// excess load with 429 + Retry-After instead of queueing without limit,
// and -request-timeout caps each request's execution. Kubernetes-style
// probes: /healthz (liveness) and /readyz (readiness; 503 while draining
// or saturated).
//
// On SIGINT/SIGTERM the server shuts down gracefully: the batchers drain
// their in-flight batches and the HTTP server finishes open requests
// before the process exits; late requests get 503 + Retry-After.
//
// The wire contract — endpoints, status codes, wait_ms, batch_size and
// flush-deadline semantics — is documented in docs/SERVE.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"orpheus/internal/onnx"
	"orpheus/internal/runtime"
	"orpheus/internal/serve"
	"orpheus/internal/zoo"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		zooNames = flag.String("zoo", "", "comma-separated built-in models to host")
		backendN = flag.String("backend", "orpheus", "execution backend")
		workers  = flag.Int("workers", 1, "kernel thread budget")
		maxBatch = flag.Int("max-batch", 1, "dynamic batching width: coalesce up to N concurrent /predict requests into one batched run (1 disables)")
		flushMs  = flag.Float64("flush-ms", 2, "batching flush deadline in milliseconds (how long a lone request waits for peers); 0 selects immediate flush, < 0 the 2ms default")
		queueDep = flag.Int("queue-depth", 64, "per-model batcher queue bound: beyond N queued requests /predict sheds with 429 and Retry-After (0 = unbounded)")
		inflight = flag.Int("max-inflight", 256, "server-wide concurrent request cap: beyond N in-flight requests /predict sheds with 429 (0 = unbounded)")
		reqTO    = flag.Duration("request-timeout", 30*time.Second, "per-request execution deadline (queue wait plus run time); 0 disables")
		int8     = flag.Bool("int8", false, "run hosted models on the int8 quantized execution tier (~4x smaller weights; outputs carry quantization noise)")
	)
	type modelSpec struct{ name, path string }
	var modelSpecs []modelSpec
	flag.Func("model", "host an .onnx model: PATH or NAME=PATH (repeatable; NAME defaults to the file's basename)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok {
			path = v
			name = strings.TrimSuffix(filepath.Base(v), ".onnx")
		}
		if name == "" || path == "" {
			return fmt.Errorf("want PATH or NAME=PATH, got %q", v)
		}
		modelSpecs = append(modelSpecs, modelSpec{name: name, path: path})
		return nil
	})
	priorities := make(map[string]int)
	flag.Func("priority", "shedding priority for a hosted model: NAME=N (repeatable; higher N sheds later under -max-inflight)", func(v string) error {
		name, ns, ok := strings.Cut(v, "=")
		n, err := strconv.Atoi(ns)
		if !ok || name == "" || err != nil {
			return fmt.Errorf("want NAME=N, got %q", v)
		}
		priorities[name] = n
		return nil
	})
	flag.Parse()
	// modelOpts resolves a model's Add-time options and marks its
	// priority entry as consumed, so typos in -priority are caught below.
	used := make(map[string]bool)
	modelOpts := func(name string) []serve.ModelOption {
		if p, ok := priorities[name]; ok {
			used[name] = true
			return []serve.ModelOption{serve.WithModelPriority(p)}
		}
		return nil
	}

	opts := []serve.Option{
		serve.WithMaxBatch(*maxBatch),
		serve.WithFlushDeadline(time.Duration(*flushMs * float64(time.Millisecond))),
		serve.WithQueueDepth(*queueDep),
		serve.WithMaxInflight(*inflight),
		serve.WithRequestTimeout(*reqTO),
	}
	if *int8 {
		opts = append(opts, serve.WithInt8())
	}
	s := serve.New(opts...)
	hosted := 0
	if *zooNames != "" {
		for _, name := range strings.Split(*zooNames, ",") {
			g, err := zoo.Build(name, 1)
			if err != nil {
				log.Fatal(err)
			}
			if err := s.AddModel(name, g, *backendN, *workers, modelOpts(name)...); err != nil {
				log.Fatal(err)
			}
			log.Printf("hosting %s (%s backend, priority %d)", name, *backendN, priorities[name])
			hosted++
		}
	}
	for _, spec := range modelSpecs {
		g, err := onnx.ImportFile(spec.path)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.AddModel(spec.name, g, *backendN, *workers, modelOpts(spec.name)...); err != nil {
			log.Fatal(err)
		}
		log.Printf("hosting %s from %s (%s backend, priority %d)", spec.name, spec.path, *backendN, priorities[spec.name])
		hosted++
	}
	if hosted == 0 {
		log.Fatal(fmt.Errorf("nothing to host: pass -zoo and/or -model (zoo models: %v)", zoo.Names()))
	}
	for name := range priorities {
		if !used[name] {
			log.Fatal(fmt.Errorf("-priority %s=%d names a model that is not hosted", name, priorities[name]))
		}
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("shutting down: draining open requests, then batchers")
		// Order matters: Shutdown first stops accepting and waits for open
		// handlers — which flow through the still-open batchers, so queued
		// batched requests complete normally instead of getting 500s. Only
		// then are the batchers themselves drained.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		s.Close()
		// Final batching report: flush causes and queueing latency tell
		// the operator whether max-batch / flush-ms were sized right, shed
		// and panic counters whether queue-depth / max-inflight were.
		for _, name := range s.ModelNames() {
			st, ok := s.BatcherStats(name)
			if !ok {
				if q, qok := s.Quarantined(name); qok && q > 0 {
					log.Printf("model %s: %d sessions quarantined after panics", name, q)
				}
				continue
			}
			avgWaitMs := 0.0
			if st.Requests > 0 {
				avgWaitMs = float64(st.QueuedWait) / float64(st.Requests) / 1e6
			}
			log.Printf("batcher %s: %d requests in %d runs (flushes: %d full, %d deadline, %d immediate, %d explicit, %d close), %d rejected, %d cancelled, avg queued wait %.3f ms",
				name, st.Requests, st.Runs, st.FlushFull, st.FlushDeadline, st.FlushImmediate, st.FlushExplicit, st.FlushClose, st.Rejected, st.Cancelled, avgWaitMs)
			if st.Requests > 0 {
				log.Printf("batcher %s: queued-wait histogram %s", name, waitHistogram(st))
			}
			if q, ok := s.Quarantined(name); ok && q > 0 {
				log.Printf("model %s: %d sessions quarantined after panics", name, q)
			}
		}
		if shed, panics := s.ShedCount(), s.PanicCount(); shed > 0 || panics > 0 {
			log.Printf("overload: %d requests shed (429/503), %d plan-step panics contained", shed, panics)
		}
	}()
	log.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as the listeners close; the drain
	// goroutine signals when open requests and batchers have finished.
	<-drained
	log.Printf("bye")
}

// waitHistogram renders the queued-wait latency bands compactly, e.g.
// "<=0.1ms:12 <=1ms:3 >25ms:1" — empty buckets are skipped.
func waitHistogram(st runtime.BatcherStats) string {
	var sb strings.Builder
	for i, n := range st.WaitHistogram {
		if n == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		if i < len(runtime.WaitBucketBounds) {
			fmt.Fprintf(&sb, "<=%gms:%d", float64(runtime.WaitBucketBounds[i])/1e6, n)
		} else {
			fmt.Fprintf(&sb, ">%gms:%d", float64(runtime.WaitBucketBounds[len(runtime.WaitBucketBounds)-1])/1e6, n)
		}
	}
	if sb.Len() == 0 {
		return "(empty)"
	}
	return sb.String()
}
