package ops

// Implicit-GEMM convolution support: a gemm.PackSrc that packs B panels
// straight from the NCHW input image.
//
// GEMM convolution multiplies the reshaped weight matrix [coutG × kdim]
// by the unfolded input [kdim × oh*ow]. The explicit form (conv.im2col_
// explicit) materialises that unfold into a kdim×cols scratch matrix that
// the packed GEMM then re-reads and re-copies into panels — every input
// element is written once and read twice before any arithmetic happens.
// convPackSrc removes the intermediate: the packed tier asks it for each
// kc×nc panel and it gathers the receptive-field values directly into
// pack strips, handling padding, stride, dilation, groups and the batch
// (the image index selects the NCHW slab). The kdim×cols scratch and its
// per-session arena reservation disappear entirely.

// convPackSrc describes the virtual B matrix of one convolution group:
// B[kd][col] = x[img][chan0 + kd/(kh*kw)][oy*sh - padT + ky*dh][ox*sw -
// padL + kx*dw] with (ky, kx) from kd and (oy, ox) from col, zero outside
// the input. It is read-only during a gemm call, so the pool may pack
// panels from several workers at once.
type convPackSrc struct {
	x                                  []float32 // whole NCHW input batch
	cin                                int       // channels per image (image stride is cin*h*w)
	h, w                               int
	chan0                              int // first input channel of this group
	kh, kw, sh, sw, padT, padL, dh, dw int
	oh, ow                             int
}

// init points the source at group g of the convolution described by p.
func (s *convPackSrc) init(x []float32, p *convParams, g int) {
	s.x = x
	s.cin, s.h, s.w = p.cin, p.h, p.w
	s.chan0 = g * (p.cin / p.groups)
	s.kh, s.kw, s.sh, s.sw = p.kh, p.kw, p.sh, p.sw
	s.padT, s.padL, s.dh, s.dw = p.padT, p.padL, p.dh, p.dw
	s.oh, s.ow = p.oh, p.ow
}

// PackPanel implements gemm.PackSrc: the kc×nc panel at (pp, jj) of image
// img's unfold matrix, written as strips of nr columns (row-major within
// each strip), edge strips zero-padded. Rows decode to (channel, ky, kx);
// columns to output pixels, walked in runs that stay within one output
// row so the interior fast path is a bounds-free copy.
func (s *convPackSrc) PackPanel(dst []float32, img, pp, jj, kc, nc, nr int) {
	khw := s.kh * s.kw
	plane := s.h * s.w
	imgBase := (img*s.cin + s.chan0) * plane
	for j := 0; j < nc; j += nr {
		cols := min(nr, nc-j)
		strip := dst[(j/nr)*kc*nr:]
		for p := 0; p < kc; p++ {
			kd := pp + p
			ic := kd / khw
			rem := kd - ic*khw
			ky := rem / s.kw
			kx := rem - ky*s.kw
			xc := s.x[imgBase+ic*plane : imgBase+(ic+1)*plane]
			dy := ky*s.dh - s.padT // iy = oy*sh + dy
			dx := kx*s.dw - s.padL // ix = ox*sw + dx
			row := strip[p*nr : p*nr+nr]
			col := jj + j
			cc := 0
			for cc < cols {
				oy := col / s.ow
				ox := col - oy*s.ow
				run := min(s.ow-ox, cols-cc)
				seg := row[cc : cc+run]
				iy := oy*s.sh + dy
				if iy < 0 || iy >= s.h {
					for i := range seg {
						seg[i] = 0
					}
				} else {
					xrow := xc[iy*s.w : (iy+1)*s.w]
					ix := ox*s.sw + dx
					if s.sw == 1 {
						// Contiguous gather: zero the out-of-bounds
						// fringes, copy the live middle [lo, hi).
						lo, hi := 0, run
						if ix < 0 {
							lo = min(-ix, run)
						}
						if ix+run > s.w {
							hi = s.w - ix
						}
						if hi < lo {
							hi = lo
						}
						for i := 0; i < lo; i++ {
							seg[i] = 0
						}
						if hi > lo {
							copy(seg[lo:hi], xrow[ix+lo:ix+hi])
						}
						for i := hi; i < run; i++ {
							seg[i] = 0
						}
					} else {
						for i := range seg {
							if ix >= 0 && ix < s.w {
								seg[i] = xrow[ix]
							} else {
								seg[i] = 0
							}
							ix += s.sw
						}
					}
				}
				cc += run
				col += run
			}
			for i := cols; i < nr; i++ {
				row[i] = 0
			}
		}
	}
}
