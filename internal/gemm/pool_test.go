package gemm

import (
	"fmt"
	"sync"
	"testing"

	"orpheus/internal/tensor"
)

// dimsUnderTest stresses ragged shapes: rows not a multiple of mr, cols
// not a multiple of nr, shapes smaller than one micro-tile, small-M
// many-N conv-style GEMMs, and shapes spanning several macro-tiles.
var dimsUnderTest = [][3]int{
	{1, 1, 1},
	{3, 5, 7},
	{5, 9, 3},
	{4, 8, 4},
	{63, 65, 127},
	{130, 258, 300},
	{6, 1100, 40},  // small-M, wide-N: tiles split over columns
	{300, 12, 500}, // tall, narrow
	{97, 83, 61},
}

func naiveWant(a, b, c []float32, m, n, k int, store bool) []float32 {
	want := make([]float32, m*n)
	if !store {
		copy(want, c)
	}
	Naive(a, b, want, m, n, k)
	return want
}

func TestPoolRunMatchesNaive(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	for _, workers := range []int{1, 2, 3, 8} {
		for _, store := range []bool{false, true} {
			for _, dims := range dimsUnderTest {
				m, n, k := dims[0], dims[1], dims[2]
				r := tensor.NewRNG(uint64(1000*workers + m + n + k))
				a := randMat(r, m, k)
				b := randMat(r, k, n)
				seed := randMat(r, m, n) // pre-existing C contents
				want := naiveWant(a, b, seed, m, n, k, store)
				got := make([]float32, m*n)
				copy(got, seed)
				var ctx Context
				pool.Run(&ctx, Call{A: a, B: b, C: got, M: m, N: n, K: k, Store: store}, workers)
				if d := maxDiff(want, got); d > 1e-3 {
					t.Fatalf("pool workers=%d store=%v dims=%v differs from Naive: %v", workers, store, dims, d)
				}
			}
		}
	}
}

func TestPrepackedOperandsMatchNaive(t *testing.T) {
	for _, dims := range dimsUnderTest {
		m, n, k := dims[0], dims[1], dims[2]
		r := tensor.NewRNG(uint64(7000 + m + 3*n + 7*k))
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		want := naiveWant(a, b, nil, m, n, k, true)
		pa := PrepackA(a, m, k)
		pb := PrepackB(b, k, n)
		if len(pa) != PackedASize(m, k) || len(pb) != PackedBSize(k, n) {
			t.Fatalf("prepack sizes %d/%d, want %d/%d", len(pa), len(pb), PackedASize(m, k), PackedBSize(k, n))
		}
		var ctx Context
		for name, call := range map[string]Call{
			"packedA":  {PackedA: pa, B: b, C: make([]float32, m*n), M: m, N: n, K: k, Store: true},
			"packedB":  {A: a, PackedB: pb, C: make([]float32, m*n), M: m, N: n, K: k, Store: true},
			"packedAB": {PackedA: pa, PackedB: pb, C: make([]float32, m*n), M: m, N: n, K: k, Store: true},
		} {
			ctx.Run(call)
			if d := maxDiff(want, call.C); d > 1e-3 {
				t.Fatalf("%s dims=%v differs from Naive: %v", name, dims, d)
			}
		}
	}
}

func TestPoolPrepackedParallel(t *testing.T) {
	m, n, k := 130, 1100, 300
	r := tensor.NewRNG(11)
	a := randMat(r, m, k)
	b := randMat(r, k, n)
	want := naiveWant(a, b, nil, m, n, k, true)
	got := make([]float32, m*n)
	var ctx Context
	Shared().Run(&ctx, Call{PackedA: PrepackA(a, m, k), B: b, C: got, M: m, N: n, K: k, Store: true}, 4)
	if d := maxDiff(want, got); d > 1e-3 {
		t.Fatalf("parallel prepacked GEMM differs from Naive: %v", d)
	}
}

func TestStoreOverwritesGarbage(t *testing.T) {
	m, n, k := 9, 17, 5
	r := tensor.NewRNG(21)
	a := randMat(r, m, k)
	b := randMat(r, k, n)
	want := naiveWant(a, b, nil, m, n, k, true)
	got := make([]float32, m*n)
	for i := range got {
		got[i] = 1e9 // must be fully replaced
	}
	var ctx Context
	ctx.PackedStore(a, b, got, m, n, k)
	if d := maxDiff(want, got); d > 1e-3 {
		t.Fatalf("store GEMM left stale C contents: %v", d)
	}
	// Store with K == 0 zeroes C (beta=0 with an empty product).
	ctx.Run(Call{C: got, M: m, N: n, K: 0, Store: true})
	for i, v := range got {
		if v != 0 {
			t.Fatalf("store with k=0 did not zero C at %d: %v", i, v)
		}
	}
}

// TestPoolConcurrentCallers drives one shared pool from several goroutines
// at once, as pooled serving sessions do. Run with -race.
func TestPoolConcurrentCallers(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	const callers = 4
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var ctx Context
			for trial := 0; trial < 8; trial++ {
				m, n, k := 37+g, 530+trial, 64+3*g
				r := tensor.NewRNG(uint64(100*g + trial))
				a := randMat(r, m, k)
				b := randMat(r, k, n)
				want := naiveWant(a, b, nil, m, n, k, true)
				got := make([]float32, m*n)
				pool.Run(&ctx, Call{A: a, B: b, C: got, M: m, N: n, K: k, Store: true}, 3)
				if d := maxDiff(want, got); d > 1e-3 {
					errs <- fmt.Errorf("caller %d trial %d differs: %v", g, trial, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestParallelRaggedWorkerSweep(t *testing.T) {
	// Non-multiple-of-mr row counts across a sweep of worker budgets,
	// including budgets larger than the tile grid.
	for _, workers := range []int{1, 2, 3, 4, 7, 16, 64} {
		for _, m := range []int{1, 2, 3, 5, 129, 131, 258} {
			n, k := 67, 43
			r := tensor.NewRNG(uint64(m*workers + n))
			a := randMat(r, m, k)
			b := randMat(r, k, n)
			want := make([]float32, m*n)
			got := make([]float32, m*n)
			Naive(a, b, want, m, n, k)
			Parallel(a, b, got, m, n, k, workers)
			if d := maxDiff(want, got); d > 1e-3 {
				t.Fatalf("Parallel(workers=%d, m=%d) differs from Naive: %v", workers, m, d)
			}
		}
	}
}

// panickyPack is a PackSrc whose every panel request panics — a stand-in
// for a buggy im2col source, used to prove the pool contains worker
// panics.
type panickyPack struct{}

func (panickyPack) PackPanel(dst []float32, img, pp, jj, kc, nc, nr int) {
	panic("panickyPack: poisoned panel")
}

// TestPoolPanicIsolation pins the pool's panic barrier: a panic inside a
// worker's share of a task is re-raised on the submitting goroutine (so
// the session layer can convert it into a typed error), the workers
// survive, and the pool keeps computing correct GEMMs afterwards.
func TestPoolPanicIsolation(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	m, n, k := 64, 256, 32
	r := tensor.NewRNG(5)
	a := randMat(r, m, k)

	for trial := 0; trial < 3; trial++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("trial %d: poisoned Run did not re-raise the panic", trial)
				}
			}()
			var ctx Context
			pool.Run(&ctx, Call{A: a, BPack: panickyPack{}, C: make([]float32, m*n), M: m, N: n, K: k, Store: true}, 4)
		}()
	}

	// The pool must still be fully alive: drive it concurrently and check
	// results against the naive reference.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rr := tensor.NewRNG(uint64(900 + g))
			b := randMat(rr, k, n)
			want := naiveWant(a, b, nil, m, n, k, true)
			got := make([]float32, m*n)
			var ctx Context
			pool.Run(&ctx, Call{A: a, B: b, C: got, M: m, N: n, K: k, Store: true}, 3)
			if d := maxDiff(want, got); d > 1e-3 {
				errs <- fmt.Errorf("caller %d after panic: differs from Naive by %v", g, d)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
