package orpheus

// Kernel-vs-kernel benchmarks behind BENCH_pr3.json: the same GEMM Call
// and the same models executed under every selectable micro-kernel
// (gemm.KernelNames: the pure-Go fallback plus the SIMD kernels this CPU
// dispatches to). Everything above the micro-kernel is identical across
// sub-benchmarks, so ns/op ratios isolate the kernel itself. CI records
// both families, plus BenchmarkBatch, into BENCH_pr3.json via
// cmd/orpheus-benchjson.
//
//	go test -run '^$' -bench 'BenchmarkKernel' -benchmem .

import (
	"context"
	"fmt"
	"testing"

	"orpheus/internal/backend"
	"orpheus/internal/gemm"
	"orpheus/internal/passes"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
)

// restoreKernel returns a cleanup restoring the current kernel selection.
func restoreKernel(b *testing.B) func() {
	prev := gemm.KernelName()
	return func() {
		if err := gemm.SetKernel(prev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelGEMM times one production-shaped GEMM (prepacked constant
// A, overwrite semantics, single worker) per micro-kernel. SetBytes
// reports 2·M·N·K "bytes" so the MB/s column reads as FLOP/s.
func BenchmarkKernelGEMM(b *testing.B) {
	defer restoreKernel(b)()
	shapes := []struct{ m, n, k int }{
		{64, 256, 576},   // wrn-40-2 mid 3x3 conv GEMM
		{128, 784, 64},   // mobilenet pointwise
		{256, 256, 256},  // square reference
		{64, 12544, 576}, // resnet-ish wide conv
	}
	for _, sh := range shapes {
		r := tensor.NewRNG(tensor.SeedFromString(fmt.Sprintf("kb-%d-%d-%d", sh.m, sh.n, sh.k)))
		a := make([]float32, sh.m*sh.k)
		for i := range a {
			a[i] = r.Uniform(-1, 1)
		}
		bb := make([]float32, sh.k*sh.n)
		for i := range bb {
			bb[i] = r.Uniform(-1, 1)
		}
		c := make([]float32, sh.m*sh.n)
		for _, kn := range gemm.KernelNames() {
			b.Run(fmt.Sprintf("%dx%dx%d/%s", sh.m, sh.n, sh.k, kn), func(b *testing.B) {
				if err := gemm.SetKernel(kn); err != nil {
					b.Fatal(err)
				}
				// Prepack under the kernel that will consume the panels.
				pa := gemm.PrepackA(a, sh.m, sh.k)
				call := gemm.Call{PackedA: pa, B: bb, C: c, M: sh.m, N: sh.n, K: sh.k, Store: true}
				var ctx gemm.Context
				ctx.Run(call) // warm-up grows packing scratch
				b.SetBytes(2 * int64(sh.m) * int64(sh.n) * int64(sh.k))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ctx.Run(call)
				}
			})
		}
	}
}

// BenchmarkKernelModel times one full single-sample inference per
// micro-kernel for the two PR-trajectory models. The plan is rebuilt under
// each kernel so the constant-weight prepack cache carries that kernel's
// panel geometry — exactly what a process restart under
// ORPHEUS_GEMM_KERNEL would produce.
func BenchmarkKernelModel(b *testing.B) {
	defer restoreKernel(b)()
	for _, model := range []string{"wrn-40-2", "mobilenet-v1"} {
		g := cachedModel(b, model)
		for _, kn := range gemm.KernelNames() {
			b.Run(model+"/"+kn, func(b *testing.B) {
				if err := gemm.SetKernel(kn); err != nil {
					b.Fatal(err)
				}
				be, err := backend.ByName("orpheus")
				if err != nil {
					b.Fatal(err)
				}
				plan, err := be.Prepare(g, 1)
				if err != nil {
					b.Fatal(err)
				}
				sess := runtime.NewSession(plan)
				x := tensor.Rand(tensor.NewRNG(1), -1, 1, g.Inputs[0].Shape...)
				in := map[string]*tensor.Tensor{g.Inputs[0].Name: x}
				if _, err := sess.Run(context.Background(), in); err != nil { // warm-up packs weights
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sess.Run(context.Background(), in); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// restoreKernel8 returns a cleanup restoring the int8 kernel selection.
func restoreKernel8(b *testing.B) func() {
	prev := gemm.Kernel8Name()
	return func() {
		if err := gemm.SetKernel8(prev); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSrc8 is a PackSrc8 over a pre-quantized u8 activation matrix (K×N
// row-major, single image): PackPanel8 is pure byte shuffling, matching
// the production pack-boundary cost after bulk quantization.
type benchSrc8 struct {
	q    []byte
	k, n int
}

// PackPanel8 implements gemm.PackSrc8 in the k-quad strip layout.
func (s *benchSrc8) PackPanel8(dst []byte, img, pp, jj, kc, nc, nr int) {
	kcq4 := (kc + 3) &^ 3
	need := (nc + nr - 1) / nr * nr * kcq4
	for i := range dst[:need] {
		dst[i] = 0
	}
	for j := 0; j < nc; j++ {
		base := j/nr*nr*kcq4 + j%nr*4
		for p := 0; p < kc; p++ {
			dst[base+(p>>2)*nr*4+p&3] = s.q[(pp+p)*s.n+jj+j]
		}
	}
}

// BenchmarkKernelGEMMInt8 is the quantized counterpart of
// BenchmarkKernelGEMM: one production-shaped u8×s8 GEMM (prepacked
// constant A, pre-quantized B, fused requantize epilogue) per int8
// micro-kernel, on the same shapes so the two families compare directly.
// SetBytes again reports 2·M·N·K so the MB/s column reads as (int) FLOP/s.
func BenchmarkKernelGEMMInt8(b *testing.B) {
	defer restoreKernel8(b)()
	shapes := []struct{ m, n, k int }{
		{64, 256, 576},   // wrn-40-2 mid 3x3 conv GEMM
		{128, 784, 64},   // mobilenet pointwise
		{256, 256, 256},  // square reference
		{64, 12544, 576}, // resnet-ish wide conv
	}
	for _, sh := range shapes {
		r := tensor.NewRNG(tensor.SeedFromString(fmt.Sprintf("kb8-%d-%d-%d", sh.m, sh.n, sh.k)))
		a := make([]int8, sh.m*sh.k)
		for i := range a {
			a[i] = int8(r.Uniform(-63, 64))
		}
		q := make([]byte, sh.k*sh.n)
		for i := range q {
			q[i] = byte(r.Uniform(0, 256))
		}
		scaleA := make([]float32, sh.m)
		bias := make([]float32, sh.m)
		for i := range scaleA {
			scaleA[i] = 1.0 / 63
			bias[i] = r.Uniform(-1, 1)
		}
		rowSum := make([]int32, sh.m)
		gemm.RowSumsInt8(rowSum, a, sh.m, sh.k)
		c := make([]float32, sh.m*sh.n)
		src := &benchSrc8{q: q, k: sh.k, n: sh.n}
		for _, kn := range gemm.Kernel8Names() {
			b.Run(fmt.Sprintf("%dx%dx%d/%s", sh.m, sh.n, sh.k, kn), func(b *testing.B) {
				if err := gemm.SetKernel8(kn); err != nil {
					b.Fatal(err)
				}
				// Prepack under the kernel that will consume the panels.
				pa := gemm.PrepackAInt8(a, sh.m, sh.k)
				call := gemm.CallInt8{
					PackedA: pa, B: src, C: c, M: sh.m, N: sh.n, K: sh.k,
					ScaleA: scaleA, RowSum: rowSum,
					BScale: []float32{0.011}, BZero: []int32{128},
					BiasRow: bias, Act: gemm.ActReLU,
				}
				var ctx gemm.Context
				ctx.RunInt8(call) // warm-up grows packing scratch
				b.SetBytes(2 * int64(sh.m) * int64(sh.n) * int64(sh.k))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ctx.RunInt8(call)
				}
			})
		}
	}
}

// BenchmarkQuantModel times full single-sample inference with the plan
// compiled fp32 versus int8 (WithInt8 / PrepareOpts.Int8) — the PR-7
// before/after pair behind BENCH_pr7.json. The weights-B/run metric
// reports the packed constant footprint, which the int8 tier shrinks
// roughly 4x.
func BenchmarkQuantModel(b *testing.B) {
	for _, model := range []string{"wrn-40-2", "mobilenet-v1", "resnet-18"} {
		g := cachedModel(b, model)
		for _, mode := range []string{"fp32", "int8"} {
			b.Run(model+"/"+mode, func(b *testing.B) {
				be, err := backend.ByName("orpheus")
				if err != nil {
					b.Fatal(err)
				}
				plan, err := be.PrepareWith(g, backend.PrepareOpts{Workers: 1, MaxBatch: 1, Int8: mode == "int8"})
				if err != nil {
					b.Fatal(err)
				}
				sess := runtime.NewSession(plan)
				x := tensor.Rand(tensor.NewRNG(1), -1, 1, g.Inputs[0].Shape...)
				in := map[string]*tensor.Tensor{g.Inputs[0].Name: x}
				if _, err := sess.Run(context.Background(), in); err != nil { // warm-up packs weights
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sess.Run(context.Background(), in); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(plan.ConstBytes()), "weights-B")
			})
		}
	}
}

// BenchmarkLayoutModel times full single-sample inference with the plan
// compiled NCHW versus NHWC (PrepareOpts.Layout) — the PR-10 before/after
// pair behind BENCH_pr10.json. Every zoo model appears so the pairs show
// where channel-innermost execution wins (depthwise-heavy nets) and where
// the NCHW tier stays ahead; the auto arbiter keeps the faster side.
func BenchmarkLayoutModel(b *testing.B) {
	for _, model := range []string{"wrn-40-2", "mobilenet-v1", "resnet-18", "inception-v3", "resnet-50"} {
		g := cachedModel(b, model)
		for _, layout := range []string{"nchw", "nhwc"} {
			b.Run(model+"/"+layout, func(b *testing.B) {
				be, err := backend.ByName("orpheus")
				if err != nil {
					b.Fatal(err)
				}
				plan, err := be.PrepareWith(g, backend.PrepareOpts{Workers: 1, MaxBatch: 1, Layout: layout})
				if err != nil {
					b.Fatal(err)
				}
				sess := runtime.NewSession(plan)
				x := tensor.Rand(tensor.NewRNG(1), -1, 1, g.Inputs[0].Shape...)
				in := map[string]*tensor.Tensor{g.Inputs[0].Name: x}
				if _, err := sess.Run(context.Background(), in); err != nil { // warm-up packs weights
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sess.Run(context.Background(), in); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkConvImplicit times full single-sample inference with the GEMM
// convolution path flipped between the production implicit form
// (conv.im2col: virtual B-pack + fused epilogue) and the explicit form
// (conv.im2col_explicit: materialised kdim×cols unfold, separate
// bias/activation sweeps) — the PR-5 before/after pair behind
// BENCH_pr5.json. The scratch-B/run metric reports the per-session kernel
// scratch footprint, which carries the unfold buffers the implicit path
// deletes.
func BenchmarkConvImplicit(b *testing.B) {
	for _, model := range []string{"wrn-40-2", "resnet-18", "mobilenet-v1"} {
		g := cachedModel(b, model)
		for _, kernel := range []string{"conv.im2col", "conv.im2col_explicit"} {
			label := "implicit"
			if kernel == "conv.im2col_explicit" {
				label = "explicit"
			}
			b.Run(model+"/"+label, func(b *testing.B) {
				work := g.Clone()
				if err := work.Finalize(); err != nil {
					b.Fatal(err)
				}
				if _, err := passes.Default().Run(work); err != nil {
					b.Fatal(err)
				}
				plan, err := runtime.Compile(work, runtime.Options{
					Policy: &backend.PreferencePolicy{
						PolicyName: "bench-" + label,
						Prefs: map[string][]string{
							"Conv":  {"conv.depthwise", kernel},
							"Dense": {"dense.gemm"},
						},
					},
					Workers: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				sess := runtime.NewSession(plan)
				x := tensor.Rand(tensor.NewRNG(1), -1, 1, work.Inputs[0].Shape...)
				in := map[string]*tensor.Tensor{work.Inputs[0].Name: x}
				if _, err := sess.Run(context.Background(), in); err != nil { // warm-up packs weights
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sess.Run(context.Background(), in); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(sess.CtxScratchBytes()), "scratch-B/run")
			})
		}
	}
}
