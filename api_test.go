package orpheus

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// multiIOModel builds a two-input two-output graph: sum = relu(a + b) and
// prod = a * b, the shape the single-tensor Predict path cannot express.
func multiIOModel(t testing.TB) *Model {
	t.Helper()
	g := graph.New("multi-io")
	a, err := g.Input("a", []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := g.Input("b", []int{1, 8})
	sum, _ := g.Add("Add", "add", nil, a, b)
	rl, _ := g.Add("Relu", "relu", nil, sum)
	prod, _ := g.Add("Mul", "mul", nil, a, b)
	if err := g.MarkOutput(rl); err != nil {
		t.Fatal(err)
	}
	if err := g.MarkOutput(prod); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return FromGraph(g)
}

// TestMultiIORunEndToEnd round-trips a two-input two-output graph through
// the named-tensor facade path: descriptors, named Run, per-output
// numerics, and batched execution — none of it touching Inputs[0]-style
// assumptions.
func TestMultiIORunEndToEnd(t *testing.T) {
	sess, err := multiIOModel(t).Compile(WithMaxBatch(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	ins, outs := sess.Inputs(), sess.Outputs()
	if len(ins) != 2 || ins[0].Name != "a" || ins[1].Name != "b" {
		t.Fatalf("input descriptors = %+v", ins)
	}
	if len(outs) != 2 {
		t.Fatalf("output descriptors = %+v", outs)
	}
	for _, d := range ins {
		if d.DType != "float32" || !d.Batched || len(d.Shape) != 2 || d.Shape[0] != 1 || d.Shape[1] != 8 {
			t.Fatalf("input descriptor %+v", d)
		}
	}

	a := TensorFromSlice([]float32{1, -2, 3, -4, 5, -6, 7, -8}, 1, 8)
	b := TensorFromSlice([]float32{1, 1, -1, -1, 2, 2, -2, -2}, 1, 8)
	res, err := sess.Run(context.Background(), map[string]*Tensor{"a": a, "b": b})
	if err != nil {
		t.Fatal(err)
	}
	relu := res[outs[0].Name]
	mul := res[outs[1].Name]
	if relu == nil || mul == nil {
		t.Fatalf("outputs missing from Run result: %v", res)
	}
	for i := 0; i < 8; i++ {
		s := a.Data()[i] + b.Data()[i]
		if s < 0 {
			s = 0
		}
		if relu.Data()[i] != s {
			t.Fatalf("relu output [%d] = %v, want %v", i, relu.Data()[i], s)
		}
		if mul.Data()[i] != a.Data()[i]*b.Data()[i] {
			t.Fatalf("mul output [%d] = %v, want %v", i, mul.Data()[i], a.Data()[i]*b.Data()[i])
		}
	}

	// Batched: both inputs at n=2 must match two independent runs.
	a2 := TensorFromSlice(append(append([]float32(nil), a.Data()...), b.Data()...), 2, 8)
	b2 := TensorFromSlice(append(append([]float32(nil), b.Data()...), a.Data()...), 2, 8)
	res2, err := sess.Run(context.Background(), map[string]*Tensor{"a": a2, "b": b2})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{outs[0].Name, outs[1].Name} {
		got := res2[name]
		if got.Dim(0) != 2 {
			t.Fatalf("batched output %q shape %v", name, got.Shape())
		}
		// Row 0 of the batch is the same (a, b) pair as the single run.
		for i := 0; i < 8; i++ {
			if got.Data()[i] != res[name].Data()[i] {
				t.Fatalf("batched row 0 of %q diverged at %d", name, i)
			}
		}
	}

	// The single-tensor conveniences refuse multi-I/O models with the
	// typed sentinel.
	if _, err := sess.Predict(context.Background(), a); !errors.Is(err, ErrMultiIO) {
		t.Fatalf("Predict on multi-I/O model returned %v, want ErrMultiIO", err)
	}
	if _, err := sess.PredictBatch(context.Background(), []*Tensor{a}); !errors.Is(err, ErrMultiIO) {
		t.Fatalf("PredictBatch on multi-I/O model returned %v, want ErrMultiIO", err)
	}
	if _, err := sess.NewBatcher(); !errors.Is(err, ErrMultiIO) {
		t.Fatalf("NewBatcher on multi-I/O model returned %v, want ErrMultiIO", err)
	}
}

// TestSingleIODescriptors pins the descriptor metadata of an ordinary
// model.
func TestSingleIODescriptors(t *testing.T) {
	m, err := BuildZooModel("wrn-40-2")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := m.Compile(WithMaxBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ins, outs := sess.Inputs(), sess.Outputs()
	if len(ins) != 1 || len(outs) != 1 {
		t.Fatalf("descriptors: %d inputs, %d outputs", len(ins), len(outs))
	}
	if !tensor.ShapeEq(ins[0].Shape, []int{1, 3, 32, 32}) || !ins[0].Batched {
		t.Fatalf("input descriptor %+v", ins[0])
	}
	if !tensor.ShapeEq(outs[0].Shape, []int{1, 10}) || !outs[0].Batched {
		t.Fatalf("output descriptor %+v", outs[0])
	}
}

// TestPredictCancelledBeforeRun asserts a context cancelled before the
// call returns context.Canceled without executing any plan step.
func TestPredictCancelledBeforeRun(t *testing.T) {
	m := stressCNN(t)
	sess, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Predict(ctx, RandomTensor(1, m.InputShape()...)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Predict with cancelled ctx returned %v, want context.Canceled", err)
	}
}

// TestPredictCancelMidRun asserts cancellation interrupts a running plan
// at the next step boundary: a cancel fired while wrn-40-2 executes makes
// Predict return context.Canceled well before a full inference completes.
func TestPredictCancelMidRun(t *testing.T) {
	m, err := BuildZooModel("wrn-40-2")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	x := RandomTensor(1, m.InputShape()...)
	if _, err := sess.Predict(context.Background(), x); err != nil { // warm-up: pack weights
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sess.Predict(ctx, x)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond) // into the plan walk
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Skip("inference finished before the cancel landed; host too fast to assert")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-run cancel returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled Predict did not return")
	}
}

// TestSessionCloseDrains asserts the facade lifecycle: Close waits for
// in-flight predicts, then every later request fails with ErrClosed.
func TestSessionCloseDrains(t *testing.T) {
	m := stressCNN(t)
	sess, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	x := RandomTensor(3, m.InputShape()...)
	want, err := sess.Predict(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	outs := make([]*Tensor, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			outs[c], errs[c] = sess.Predict(context.Background(), x)
		}(c)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		switch {
		case errs[c] == nil:
			// In flight at Close: must have completed correctly.
			if !tensor.AllClose(outs[c], want, 0) {
				t.Errorf("client %d: drained predict diverged", c)
			}
		case errors.Is(errs[c], ErrClosed):
			// Arrived after Close: typed rejection.
		default:
			t.Errorf("client %d: %v, want nil or ErrClosed", c, errs[c])
		}
	}

	if _, err := sess.Predict(context.Background(), x); !errors.Is(err, ErrClosed) {
		t.Fatalf("Predict after Close returned %v, want ErrClosed", err)
	}
	if _, err := sess.Run(context.Background(), map[string]*Tensor{m.InputName(): x}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close returned %v, want ErrClosed", err)
	}
	if _, err := sess.NewBatcher(); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewBatcher after Close returned %v, want ErrClosed", err)
	}
	if err := sess.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestSessionCloseDrainsBatcher asserts Session.Close also drains
// batchers created from the session.
func TestSessionCloseDrainsBatcher(t *testing.T) {
	m := stressCNN(t)
	sess, err := m.Compile(WithMaxBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.NewBatcher(WithFlushDeadline(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	x := RandomTensor(5, m.InputShape()...)
	if _, err := b.Predict(context.Background(), x); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Predict(context.Background(), x); !errors.Is(err, ErrClosed) {
		t.Fatalf("batcher Predict after session Close returned %v, want ErrClosed", err)
	}
}

// TestFacadeBatcher covers the embeddable batcher facade: results match
// the plain predict path, per-request waits work, and Close is local to
// the batcher.
func TestFacadeBatcher(t *testing.T) {
	m := stressCNN(t)
	sess, err := m.Compile(WithMaxBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	b, err := sess.NewBatcher(WithFlushDeadline(2 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	inputs := []*Tensor{
		RandomTensor(1, m.InputShape()...),
		RandomTensor(2, m.InputShape()...),
	}
	wants := make([]*Tensor, len(inputs))
	for i, x := range inputs {
		if wants[i], err = sess.Predict(context.Background(), x); err != nil {
			t.Fatal(err)
		}
	}
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			k := c % len(inputs)
			out, err := b.PredictWait(context.Background(), inputs[k], time.Duration(c)*time.Millisecond)
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			if !tensor.AllClose(out, wants[k], 0) {
				t.Errorf("client %d: batched result diverged from Predict", c)
			}
		}(c)
	}
	wg.Wait()

	b.Close()
	if _, err := b.Predict(context.Background(), inputs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Predict on closed batcher returned %v, want ErrClosed", err)
	}
	// The owning session is still open, and the closed batcher has been
	// unregistered (no accumulation across NewBatcher/Close churn).
	if _, err := sess.Predict(context.Background(), inputs[0]); err != nil {
		t.Fatalf("session broken after batcher close: %v", err)
	}
	sess.mu.RLock()
	remaining := len(sess.batchers)
	sess.mu.RUnlock()
	if remaining != 0 {
		t.Fatalf("%d batchers still registered after Close, want 0", remaining)
	}
}

// TestFacadeBatcherQueueDepth covers bounded admission at the facade:
// WithQueueDepth sheds excess Predicts with the exported ErrOverloaded
// while admitted requests complete correctly. Two requests held in the
// gather phase (the flush deadline is far away) pin the queue at its cap,
// so the third Predict sheds deterministically.
func TestFacadeBatcherQueueDepth(t *testing.T) {
	m := stressCNN(t)
	sess, err := m.Compile(WithMaxBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	b, err := sess.NewBatcher(
		WithFlushDeadline(10*time.Second),
		WithQueueDepth(2),
		WithRunTimeout(5*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	x := RandomTensor(9, m.InputShape()...)
	want, err := sess.Predict(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := b.Predict(context.Background(), x)
			if err != nil {
				t.Errorf("admitted request failed: %v", err)
				return
			}
			if !tensor.AllClose(out, want, 0) {
				t.Error("admitted request diverged from Predict")
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().QueueDepth < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled to its cap")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := b.Predict(context.Background(), x); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-cap Predict returned %v, want ErrOverloaded", err)
	}
	b.Flush()
	wg.Wait()
	st := b.Stats()
	if st.Rejected != 1 || st.Requests != 2 {
		t.Fatalf("Stats = {Requests: %d, Rejected: %d}, want {2, 1}", st.Requests, st.Rejected)
	}
}

// TestTypedErrorTaxonomy asserts the facade's errors are errors.Is-able
// against the exported sentinels.
func TestTypedErrorTaxonomy(t *testing.T) {
	m := stressCNN(t)
	sess, err := m.Compile(WithMaxBatch(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	x := RandomTensor(1, m.InputShape()...)

	if _, err := sess.Predict(context.Background(), NewTensor(2, 2)); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("bad input shape: %v, want ErrShapeMismatch", err)
	}
	if _, err := sess.PredictBatch(context.Background(), []*Tensor{x, x, x}); !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("oversized batch: %v, want ErrBatchTooLarge", err)
	}
	if _, err := sess.Run(context.Background(), map[string]*Tensor{}); !errors.Is(err, ErrUnknownInput) {
		t.Errorf("missing input: %v, want ErrUnknownInput", err)
	}
	if _, err := sess.Run(context.Background(), map[string]*Tensor{m.InputName(): x, "ghost": x}); !errors.Is(err, ErrUnknownInput) {
		t.Errorf("undeclared input name: %v, want ErrUnknownInput", err)
	}
	big := RandomTensor(2, 3, m.InputShape()[1], m.InputShape()[2], m.InputShape()[3])
	if _, err := sess.Run(context.Background(), map[string]*Tensor{m.InputName(): big}); !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("Run above MaxBatch: %v, want ErrBatchTooLarge", err)
	}
}

// TestConcurrentPredictCancelCloseStress is the facade's -race gauntlet:
// concurrent predicts with random cancellation racing a Close.
func TestConcurrentPredictCancelCloseStress(t *testing.T) {
	m := stressCNN(t)
	sess, err := m.Compile(WithMaxBatch(2))
	if err != nil {
		t.Fatal(err)
	}
	x := RandomTensor(9, m.InputShape()...)
	want, err := sess.Predict(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				if (g+i)%3 == 0 {
					cancel() // cancelled before the call
				}
				out, err := sess.Predict(ctx, x)
				cancel()
				switch {
				case err == nil:
					if !tensor.AllClose(out, want, 0) {
						t.Errorf("goroutine %d iter %d: result diverged", g, i)
						return
					}
				case errors.Is(err, context.Canceled), errors.Is(err, ErrClosed):
				default:
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond)
	_ = sess.Close()
	wg.Wait()
}
