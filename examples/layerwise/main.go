// Layerwise: per-layer evaluation, the paper's "evaluating … individual
// layers" workflow. Profiles MobileNetV1 and groups time by operator and
// by kernel, showing where depthwise vs pointwise time goes.
//
//	go run ./examples/layerwise
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"orpheus"
)

func main() {
	model, err := orpheus.BuildZooModel("mobilenet-v1")
	if err != nil {
		log.Fatal(err)
	}
	sess, err := model.Compile(orpheus.WithBackend("orpheus"))
	if err != nil {
		log.Fatal(err)
	}
	input := orpheus.RandomTensor(3, model.InputShape()...)
	ctx := context.Background()

	// Warm-up, then profile.
	if _, err := sess.Predict(ctx, input); err != nil {
		log.Fatal(err)
	}
	_, timings, err := sess.PredictProfiled(ctx, input)
	if err != nil {
		log.Fatal(err)
	}

	var total time.Duration
	byKernel := map[string]time.Duration{}
	for _, lt := range timings {
		total += lt.Duration
		byKernel[lt.Kernel] += lt.Duration
	}

	fmt.Printf("%s — %d layers, total %v\n\n", model.Summary(), len(timings), total.Round(time.Millisecond))

	fmt.Println("time by kernel implementation:")
	type kv struct {
		k string
		d time.Duration
	}
	var ks []kv
	for k, d := range byKernel {
		ks = append(ks, kv{k, d})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].d > ks[j].d })
	for _, e := range ks {
		fmt.Printf("  %-22s %10v  %5.1f%%\n", e.k, e.d.Round(10*time.Microsecond), 100*float64(e.d)/float64(total))
	}

	sort.Slice(timings, func(i, j int) bool { return timings[i].Duration > timings[j].Duration })
	fmt.Println("\nten slowest layers:")
	for i, lt := range timings {
		if i >= 10 {
			break
		}
		gflops := float64(lt.Flops) / float64(lt.Duration.Nanoseconds())
		fmt.Printf("  %-26s %-18s %10v  %6.2f GFLOP/s\n",
			lt.Node.Name, lt.Kernel, lt.Duration.Round(10*time.Microsecond), gflops)
	}
}
