package shard

import (
	"context"
	"sync"
	"testing"
	"time"

	"orpheus/internal/faultinject"
)

// BenchmarkShardPipeline measures the pipeline two ways. The "delayed"
// group injects one 10ms delay per stage (each stage owns exactly one
// of conv1/fc/prob), making stage time sleep-dominated so the overlap
// of depth >= nstages shows even on a single-core host: depth-1 pays
// all three delays per request, depth-6 approaches one. The "compute"
// group runs the tiny CNN for real, exposing the wire/framing overhead
// a loopback hop adds to an un-delayed stage chain.
func BenchmarkShardPipeline(b *testing.B) {
	b.Run("delayed-3stage", func(b *testing.B) {
		g := stageModel(b, "bench-delayed")
		servers, addrs := startStages(b, g, 3, nil)
		delayOps := []string{"Conv", "Dense", "Softmax"}
		for i, s := range servers {
			s.Plan().SetFault(faultinject.New(1, &faultinject.Rule{
				Op: delayOps[i], Action: faultinject.ActDelay, Delay: 10 * time.Millisecond,
			}))
		}
		input := sampleInput(volume(g.Inputs[0].Shape), 1)
		for _, depth := range []int{1, 6} {
			b.Run(map[int]string{1: "depth-1", 6: "depth-6"}[depth], func(b *testing.B) {
				benchPipeline(b, g.Name, addrs, depth, input)
			})
		}
	})

	b.Run("compute-3stage", func(b *testing.B) {
		g := stageModel(b, "bench-compute")
		_, addrs := startStages(b, g, 3, nil)
		input := sampleInput(volume(g.Inputs[0].Shape), 1)
		b.Run("depth-6", func(b *testing.B) {
			benchPipeline(b, g.Name, addrs, 6, input)
		})
	})
}

// benchPipeline drives b.N requests through one freshly dialed pipeline
// at the given depth, with depth concurrent submitters, reporting inf/s.
func benchPipeline(b *testing.B, model string, addrs []string, depth int, input []float32) {
	p, err := Dial(context.Background(), PipelineConfig{Model: model, Addrs: addrs, Depth: depth})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Predict(context.Background(), input); err != nil { // warm links and plans
		b.Fatal(err)
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	work := make(chan struct{})
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				if _, err := p.Predict(context.Background(), input); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < b.N; i++ {
		work <- struct{}{}
	}
	close(work)
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "inf/s")
}
