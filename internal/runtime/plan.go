package runtime

import (
	"fmt"

	"orpheus/internal/faultinject"
	"orpheus/internal/graph"
	"orpheus/internal/ops"
	"orpheus/internal/tensor"
)

// Options configures plan compilation and execution.
type Options struct {
	// Policy selects kernels; nil means ReferencePolicy.
	Policy Policy
	// Workers is the goroutine budget handed to kernels (default 1, the
	// paper's single-core setting).
	Workers int
	// MaxBatch parameterises the plan by a maximum runtime batch size
	// (default 1). Compile rebatches the graph to MaxBatch, so arena slots
	// are sized for it; sessions then accept any batch 1 ≤ n ≤ MaxBatch per
	// Run, executing over views sliced to n.
	MaxBatch int
	// NoBufferReuse disables the liveness-based memory planner: every
	// value gets a private buffer allocated at run time, emulating
	// frameworks that allocate per operator call (torch-sim; ablation A3).
	NoBufferReuse bool
	// DisableScratchReuse additionally makes kernels reallocate their
	// internal scratch (im2col buffers etc.) on every call.
	DisableScratchReuse bool
	// Int8 opts the plan into the quantized execution tier: kernels
	// registered as quantized (int8 GEMM convolution and dense) become
	// eligible, with constant weights quantized and prepacked once per
	// plan. If the policy arbitrates int8 itself (Int8Arbiter) it decides
	// per layer; otherwise it is wrapped in Int8Policy, which uses the
	// quantized kernel wherever one supports the node.
	Int8 bool
	// Fault installs a fault-injection hook consulted at every plan-step
	// boundary of every session compiled from the plan (see
	// internal/faultinject). Nil — the default — disables injection at the
	// cost of one pointer comparison per step.
	Fault *faultinject.Injector
}

// step is one planned node execution. overwrites records, at compile time,
// whether the selected kernel writes every output element itself; only
// steps that do not are zero-filled before running.
type step struct {
	node       *graph.Node
	kernel     ops.Kernel
	overwrites bool
}

// Plan is a compiled execution plan: topologically ordered steps with
// kernels chosen and buffer slots assigned. A Plan is immutable after
// Compile and may back any number of concurrent Sessions; they share its
// constant cache, so derived weights (packed GEMM panels, Winograd
// transforms) are computed once per plan, not once per session.
type Plan struct {
	g     *graph.Graph
	opts  Options
	steps []step

	// slotOf maps every intermediate (non-const, non-input) value to an
	// arena slot; slotSize is each slot's element capacity.
	slotOf   map[*graph.Value]int
	slotSize []int

	// consts caches run-invariant kernel precomputation, shared by every
	// session executing this plan.
	consts *ops.ConstCache

	// maxBatch is Options.MaxBatch (≥ 1); vmeta records, for every
	// non-const value, how its shape scales with the runtime batch. nil
	// when maxBatch == 1 (every value is static).
	maxBatch int
	vmeta    map[*graph.Value]batchMeta

	// arenaBytes is the planned arena footprint; noReuseBytes is what the
	// same graph needs without reuse (for the memory experiments).
	arenaBytes   int64
	noReuseBytes int64
}

// batchMeta describes how one value's shape scales with the runtime batch
// n: its shape is base with dimension dim multiplied by n. dim < 0 marks a
// static value (shape independent of batch).
type batchMeta struct {
	dim  int
	base []int
}

// shapeStatic reports whether the value does not scale with batch.
func (m batchMeta) static() bool { return m.dim < 0 }

// Compile plans execution of g: validates it, selects kernels and lays out
// the buffer arena. The graph must have been Finalize()d.
//
// With Options.MaxBatch > 1 the graph is rebatched to MaxBatch before
// planning (so the arena holds the largest batch) and per-value batch
// scaling is recorded so sessions can slice bindings to any smaller batch.
func Compile(g *graph.Graph, opts Options) (*Plan, error) {
	if opts.Policy == nil {
		opts.Policy = ReferencePolicy{}
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.MaxBatch < 1 {
		opts.MaxBatch = 1
	}
	if opts.MaxBatch > 1 {
		if err := g.Rebatch(opts.MaxBatch); err != nil {
			return nil, fmt.Errorf("runtime: rebatching to %d: %w", opts.MaxBatch, err)
		}
	}
	if opts.Int8 {
		if a, ok := opts.Policy.(Int8Arbiter); !ok || !a.ArbitratesInt8() {
			opts.Policy = Int8Policy{Base: opts.Policy}
		}
	}
	if err := g.TopoSort(); err != nil {
		return nil, err
	}
	p := &Plan{g: g, opts: opts, slotOf: make(map[*graph.Value]int), consts: ops.NewConstCache(), maxBatch: opts.MaxBatch}
	if opts.MaxBatch > 1 {
		if err := p.inferBatchMeta(); err != nil {
			return nil, err
		}
	}
	for _, n := range g.Nodes {
		k, err := opts.Policy.Select(n)
		if err != nil {
			return nil, fmt.Errorf("runtime: selecting kernel for %q (%s): %w", n.Name, n.Op, err)
		}
		if k.Op() != n.Op {
			return nil, fmt.Errorf("runtime: policy %q returned kernel %q (op %s) for op %s",
				opts.Policy.Name(), k.Name(), k.Op(), n.Op)
		}
		if !k.Supports(n) {
			return nil, fmt.Errorf("runtime: policy %q selected kernel %q which does not support node %q",
				opts.Policy.Name(), k.Name(), n.Name)
		}
		p.steps = append(p.steps, step{node: n, kernel: k, overwrites: ops.KernelOverwrites(k, n)})
	}
	p.planBuffers()
	if err := p.validateBindings(); err != nil {
		return nil, err
	}
	return p, nil
}

// inferBatchMeta derives how every non-const value's shape scales with the
// runtime batch by re-inferring a clone of the graph at batch 1 and diffing
// against the planned (MaxBatch) shapes. This keeps the batch dimension
// symbolic without teaching every shape rule about it explicitly: whatever
// a rule propagates is what the diff observes.
func (p *Plan) inferBatchMeta() error {
	c := p.g.Clone()
	if err := c.Rebatch(1); err != nil {
		return fmt.Errorf("runtime: inferring batch scaling: %w", err)
	}
	p.vmeta = make(map[*graph.Value]batchMeta)
	for _, name := range p.g.ValueNames() {
		v := p.g.Value(name)
		if v.IsConst() {
			continue
		}
		base := c.Value(name)
		if base == nil {
			return fmt.Errorf("runtime: value %q missing from batch-1 shape inference", name)
		}
		m, err := diffBatchShapes(name, base.Shape, v.Shape, p.maxBatch)
		if err != nil {
			return err
		}
		p.vmeta[v] = m
	}
	return nil
}

// diffBatchShapes classifies one value given its shape at batch 1 (base)
// and at MaxBatch (full). Supported scalings: static (shapes equal) or a
// single dimension multiplied by the batch with only size-1 dims before it,
// so a batch-n slice is a prefix of the full buffer.
func diffBatchShapes(name string, base, full []int, maxBatch int) (batchMeta, error) {
	if len(base) != len(full) {
		return batchMeta{}, fmt.Errorf("runtime: value %q changes rank with batch (%v vs %v)", name, base, full)
	}
	dim := -1
	for d := range base {
		if base[d] == full[d] {
			continue
		}
		if dim >= 0 {
			return batchMeta{}, fmt.Errorf("runtime: value %q scales with batch in more than one dimension (%v vs %v)", name, base, full)
		}
		if full[d] != maxBatch*base[d] {
			return batchMeta{}, fmt.Errorf("runtime: value %q does not scale linearly with batch (%v vs %v at max batch %d)", name, base, full, maxBatch)
		}
		dim = d
	}
	if dim < 0 {
		return batchMeta{dim: -1, base: base}, nil
	}
	for d := 0; d < dim; d++ {
		if base[d] != 1 {
			return batchMeta{}, fmt.Errorf("runtime: value %q has batch on non-leading dim %d of %v; prefix slicing unsupported", name, dim, full)
		}
	}
	return batchMeta{dim: dim, base: base}, nil
}

// metaFor returns the batch scaling of v; plans compiled at MaxBatch 1
// (and constants) report every value as static.
func (p *Plan) metaFor(v *graph.Value) batchMeta {
	if p.vmeta != nil {
		if m, ok := p.vmeta[v]; ok {
			return m
		}
	}
	return batchMeta{dim: -1, base: v.Shape}
}

// batchShape returns v's shape at batch n as a fresh slice.
func (p *Plan) batchShape(v *graph.Value, n int) []int {
	m := p.metaFor(v)
	shape := append([]int(nil), m.base...)
	if m.dim >= 0 {
		shape[m.dim] *= n
	}
	return shape
}

// batchVolume returns v's element count at batch n.
func (p *Plan) batchVolume(v *graph.Value, n int) int {
	m := p.metaFor(v)
	vol := tensor.Volume(m.base)
	if m.dim >= 0 {
		vol *= n
	}
	return vol
}

// MaxBatch returns the largest runtime batch the plan's sessions accept.
func (p *Plan) MaxBatch() int { return p.maxBatch }

// Int8 reports whether the plan was compiled with the quantized
// execution tier enabled.
func (p *Plan) Int8() bool { return p.opts.Int8 }

// ConstBytes returns the current footprint of the plan's derived-constant
// cache: prepacked GEMM weight panels (fp32 or int8), Winograd transforms
// and the like. It grows on first use of each cached entry, so measure
// after a warm-up run.
func (p *Plan) ConstBytes() int64 { return p.consts.Bytes() }

// SetFault installs (or clears) the plan's fault-injection hook after
// compilation — the escape hatch for harnesses that compile through a
// backend and cannot thread Options.Fault. Call it before the plan's
// sessions start running; sessions created earlier keep the hook they
// were built with.
func (p *Plan) SetFault(fi *faultinject.Injector) { p.opts.Fault = fi }

// InputShapeAt returns the shape of graph input i at batch n (for
// MaxBatch-1 plans this is simply the input's planned shape).
func (p *Plan) InputShapeAt(i, n int) []int { return p.batchShape(p.g.Inputs[i], n) }

// validateBindings checks, once at compile time, that every value a step
// reads (and every graph output) is a constant, a graph input, or a
// planned intermediate. Sessions rely on this to prebind all step tensors
// without per-run existence checks.
func (p *Plan) validateBindings() error {
	isInput := func(v *graph.Value) bool {
		for _, in := range p.g.Inputs {
			if in == v {
				return true
			}
		}
		return false
	}
	resolvable := func(v *graph.Value) bool {
		if v.IsConst() || isInput(v) {
			return true
		}
		_, ok := p.slotOf[v]
		return ok
	}
	for _, st := range p.steps {
		for _, in := range st.node.Inputs {
			if !resolvable(in) {
				return fmt.Errorf("runtime: node %q reads value %q which is never produced", st.node.Name, in.Name)
			}
		}
	}
	for _, o := range p.g.Outputs {
		if !resolvable(o) {
			return fmt.Errorf("runtime: graph output %q is never produced", o.Name)
		}
	}
	return nil
}

// planBuffers assigns arena slots to intermediate values using a greedy
// best-fit allocator over value live ranges.
func (p *Plan) planBuffers() {
	lastUse := make(map[*graph.Value]int)
	for i, st := range p.steps {
		for _, in := range st.node.Inputs {
			lastUse[in] = i
		}
	}
	// Graph outputs live to the end.
	for _, out := range p.g.Outputs {
		lastUse[out] = len(p.steps)
	}

	type freeSlot struct{ id, size int }
	var free []freeSlot
	takeSlot := func(size int) int {
		// Best fit: smallest free slot that holds size; grow the smallest
		// slot otherwise (keeps slot count minimal).
		best := -1
		for i, f := range free {
			if f.size >= size && (best < 0 || f.size < free[best].size) {
				best = i
			}
		}
		if best >= 0 {
			id := free[best].id
			free = append(free[:best], free[best+1:]...)
			return id
		}
		p.slotSize = append(p.slotSize, size)
		return len(p.slotSize) - 1
	}

	for i, st := range p.steps {
		for _, out := range st.node.Outputs {
			size := tensor.Volume(out.Shape)
			p.noReuseBytes += int64(size) * 4
			id := takeSlot(size)
			if p.slotSize[id] < size {
				p.slotSize[id] = size
			}
			p.slotOf[out] = id
		}
		// Release slots whose values die at this step.
		for _, in := range st.node.Inputs {
			if lastUse[in] != i {
				continue
			}
			if id, ok := p.slotOf[in]; ok {
				free = append(free, freeSlot{id: id, size: p.slotSize[id]})
			}
		}
	}
	for _, size := range p.slotSize {
		p.arenaBytes += int64(size) * 4
	}
}

// ArenaBytes returns the planned intermediate-buffer footprint with reuse.
func (p *Plan) ArenaBytes() int64 { return p.arenaBytes }

// NoReuseBytes returns the footprint the graph would need if every
// intermediate value had a private buffer.
func (p *Plan) NoReuseBytes() int64 { return p.noReuseBytes }

// WeightBytes returns the total constant (weight) footprint.
func (p *Plan) WeightBytes() int64 { return p.g.NumParams() * 4 }

// Steps returns the planned (node, kernel-name) sequence for reporting.
func (p *Plan) Steps() []PlannedStep {
	out := make([]PlannedStep, len(p.steps))
	for i, st := range p.steps {
		out[i] = PlannedStep{Node: st.node, Kernel: st.kernel.Name()}
	}
	return out
}

// PlannedStep describes one entry of the execution plan.
type PlannedStep struct {
	Node   *graph.Node
	Kernel string
}
