package ops

import (
	"math"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// BatchNorm (inference mode): y = scale * (x - mean) / sqrt(var + eps) + bias
// per channel. The optimisation pipeline normally folds this into the
// preceding Conv/Dense; this kernel exists for unoptimised graphs and for
// the pass-ablation experiment.
//
//	inputs: X [N,C,...], scale [C], bias [C], mean [C], var [C]
//	attr:   "epsilon" float64 (default 1e-5)
func init() {
	Register(NewOverwritingKernel("batchnorm.direct", "BatchNorm", nil, runBatchNorm))
}

func runBatchNorm(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	x := in[0]
	scale, bias, mean, variance := in[1].Data(), in[2].Data(), in[3].Data(), in[4].Data()
	eps := n.Attrs.Float("epsilon", 1e-5)
	s := x.Shape()
	nb, c := s[0], s[1]
	spatial := 1
	for _, d := range s[2:] {
		spatial *= d
	}
	xd, yd := x.Data(), out[0].Data()
	if n.Attrs.Str("layout", "") == "nhwc" {
		// Channel-innermost: precompute the per-channel affine form once,
		// then sweep pixel rows with a fused multiply-add over the channel
		// axis.
		c = s[len(s)-1]
		pixels := nb
		for _, d := range s[1 : len(s)-1] {
			pixels *= d
		}
		ab := ctx.ScratchUninit("batchnorm.direct/ab", n, 2*c)
		av, bv := ab[:c], ab[c:]
		for ch := 0; ch < c; ch++ {
			av[ch] = scale[ch] / float32(math.Sqrt(float64(variance[ch])+eps))
			bv[ch] = bias[ch] - av[ch]*mean[ch]
		}
		for px := 0; px < pixels; px++ {
			src := xd[px*c : (px+1)*c]
			dst := yd[px*c : (px+1)*c]
			for i, v := range src {
				dst[i] = av[i]*v + bv[i]
			}
		}
		return nil
	}
	for ch := 0; ch < c; ch++ {
		// Precompute the affine form: y = a*x + b.
		a := scale[ch] / float32(math.Sqrt(float64(variance[ch])+eps))
		b := bias[ch] - a*mean[ch]
		for batch := 0; batch < nb; batch++ {
			off := (batch*c + ch) * spatial
			src := xd[off : off+spatial]
			dst := yd[off : off+spatial]
			for i, v := range src {
				dst[i] = a*v + b
			}
		}
	}
	return nil
}
