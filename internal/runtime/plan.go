package runtime

import (
	"fmt"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
	"orpheus/internal/tensor"
)

// Options configures plan compilation and execution.
type Options struct {
	// Policy selects kernels; nil means ReferencePolicy.
	Policy Policy
	// Workers is the goroutine budget handed to kernels (default 1, the
	// paper's single-core setting).
	Workers int
	// NoBufferReuse disables the liveness-based memory planner: every
	// value gets a private buffer allocated at run time, emulating
	// frameworks that allocate per operator call (torch-sim; ablation A3).
	NoBufferReuse bool
	// DisableScratchReuse additionally makes kernels reallocate their
	// internal scratch (im2col buffers etc.) on every call.
	DisableScratchReuse bool
}

// step is one planned node execution. overwrites records, at compile time,
// whether the selected kernel writes every output element itself; only
// steps that do not are zero-filled before running.
type step struct {
	node       *graph.Node
	kernel     ops.Kernel
	overwrites bool
}

// Plan is a compiled execution plan: topologically ordered steps with
// kernels chosen and buffer slots assigned. A Plan is immutable after
// Compile and may back any number of concurrent Sessions; they share its
// constant cache, so derived weights (packed GEMM panels, Winograd
// transforms) are computed once per plan, not once per session.
type Plan struct {
	g     *graph.Graph
	opts  Options
	steps []step

	// slotOf maps every intermediate (non-const, non-input) value to an
	// arena slot; slotSize is each slot's element capacity.
	slotOf   map[*graph.Value]int
	slotSize []int

	// consts caches run-invariant kernel precomputation, shared by every
	// session executing this plan.
	consts *ops.ConstCache

	// arenaBytes is the planned arena footprint; noReuseBytes is what the
	// same graph needs without reuse (for the memory experiments).
	arenaBytes   int64
	noReuseBytes int64
}

// Compile plans execution of g: validates it, selects kernels and lays out
// the buffer arena. The graph must have been Finalize()d.
func Compile(g *graph.Graph, opts Options) (*Plan, error) {
	if opts.Policy == nil {
		opts.Policy = ReferencePolicy{}
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if err := g.TopoSort(); err != nil {
		return nil, err
	}
	p := &Plan{g: g, opts: opts, slotOf: make(map[*graph.Value]int), consts: ops.NewConstCache()}
	for _, n := range g.Nodes {
		k, err := opts.Policy.Select(n)
		if err != nil {
			return nil, fmt.Errorf("runtime: selecting kernel for %q (%s): %w", n.Name, n.Op, err)
		}
		if k.Op() != n.Op {
			return nil, fmt.Errorf("runtime: policy %q returned kernel %q (op %s) for op %s",
				opts.Policy.Name(), k.Name(), k.Op(), n.Op)
		}
		if !k.Supports(n) {
			return nil, fmt.Errorf("runtime: policy %q selected kernel %q which does not support node %q",
				opts.Policy.Name(), k.Name(), n.Name)
		}
		p.steps = append(p.steps, step{node: n, kernel: k, overwrites: ops.KernelOverwrites(k, n)})
	}
	p.planBuffers()
	if err := p.validateBindings(); err != nil {
		return nil, err
	}
	return p, nil
}

// validateBindings checks, once at compile time, that every value a step
// reads (and every graph output) is a constant, a graph input, or a
// planned intermediate. Sessions rely on this to prebind all step tensors
// without per-run existence checks.
func (p *Plan) validateBindings() error {
	isInput := func(v *graph.Value) bool {
		for _, in := range p.g.Inputs {
			if in == v {
				return true
			}
		}
		return false
	}
	resolvable := func(v *graph.Value) bool {
		if v.IsConst() || isInput(v) {
			return true
		}
		_, ok := p.slotOf[v]
		return ok
	}
	for _, st := range p.steps {
		for _, in := range st.node.Inputs {
			if !resolvable(in) {
				return fmt.Errorf("runtime: node %q reads value %q which is never produced", st.node.Name, in.Name)
			}
		}
	}
	for _, o := range p.g.Outputs {
		if !resolvable(o) {
			return fmt.Errorf("runtime: graph output %q is never produced", o.Name)
		}
	}
	return nil
}

// planBuffers assigns arena slots to intermediate values using a greedy
// best-fit allocator over value live ranges.
func (p *Plan) planBuffers() {
	lastUse := make(map[*graph.Value]int)
	for i, st := range p.steps {
		for _, in := range st.node.Inputs {
			lastUse[in] = i
		}
	}
	// Graph outputs live to the end.
	for _, out := range p.g.Outputs {
		lastUse[out] = len(p.steps)
	}

	type freeSlot struct{ id, size int }
	var free []freeSlot
	takeSlot := func(size int) int {
		// Best fit: smallest free slot that holds size; grow the smallest
		// slot otherwise (keeps slot count minimal).
		best := -1
		for i, f := range free {
			if f.size >= size && (best < 0 || f.size < free[best].size) {
				best = i
			}
		}
		if best >= 0 {
			id := free[best].id
			free = append(free[:best], free[best+1:]...)
			return id
		}
		p.slotSize = append(p.slotSize, size)
		return len(p.slotSize) - 1
	}

	for i, st := range p.steps {
		for _, out := range st.node.Outputs {
			size := tensor.Volume(out.Shape)
			p.noReuseBytes += int64(size) * 4
			id := takeSlot(size)
			if p.slotSize[id] < size {
				p.slotSize[id] = size
			}
			p.slotOf[out] = id
		}
		// Release slots whose values die at this step.
		for _, in := range st.node.Inputs {
			if lastUse[in] != i {
				continue
			}
			if id, ok := p.slotOf[in]; ok {
				free = append(free, freeSlot{id: id, size: p.slotSize[id]})
			}
		}
	}
	for _, size := range p.slotSize {
		p.arenaBytes += int64(size) * 4
	}
}

// ArenaBytes returns the planned intermediate-buffer footprint with reuse.
func (p *Plan) ArenaBytes() int64 { return p.arenaBytes }

// NoReuseBytes returns the footprint the graph would need if every
// intermediate value had a private buffer.
func (p *Plan) NoReuseBytes() int64 { return p.noReuseBytes }

// WeightBytes returns the total constant (weight) footprint.
func (p *Plan) WeightBytes() int64 { return p.g.NumParams() * 4 }

// Steps returns the planned (node, kernel-name) sequence for reporting.
func (p *Plan) Steps() []PlannedStep {
	out := make([]PlannedStep, len(p.steps))
	for i, st := range p.steps {
		out[i] = PlannedStep{Node: st.node, Kernel: st.kernel.Name()}
	}
	return out
}

// PlannedStep describes one entry of the execution plan.
type PlannedStep struct {
	Node   *graph.Node
	Kernel string
}
