package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
	"orpheus/internal/tensor"
)

// slowKernel delays a wrapped kernel so tests can observe a plan that is
// still executing when deadlines expire.
type slowKernel struct {
	ops.Kernel
	delay time.Duration
}

func (k slowKernel) Run(ctx *ops.Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	time.Sleep(k.delay)
	return k.Kernel.Run(ctx, n, in, out)
}

// slowPolicy wraps every selected kernel in a slowKernel.
type slowPolicy struct{ delay time.Duration }

func (p slowPolicy) Name() string { return "test-slow" }
func (p slowPolicy) Select(n *graph.Node) (ops.Kernel, error) {
	k, err := ReferencePolicy{}.Select(n)
	if err != nil {
		return nil, err
	}
	return slowKernel{Kernel: k, delay: p.delay}, nil
}

// newTestBatcher compiles smallCNN at the given MaxBatch and wraps a pool
// and batcher around it.
func newTestBatcher(t *testing.T, maxBatch int, opts BatcherOptions, policy Policy) (*Batcher, *SessionPool) {
	t.Helper()
	plan, err := Compile(smallCNN(t), Options{MaxBatch: maxBatch, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewSessionPool(plan)
	b, err := NewBatcher(pool, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b, pool
}

// sampleFor builds a deterministic input sample.
func sampleFor(seed int) []float32 {
	s := make([]float32, 3*8*8)
	for i := range s {
		s[i] = 0.01 * float32((i*(seed+3))%17)
	}
	return s
}

// referenceRow runs one sample through the pool directly (batch 1).
func referenceRow(t *testing.T, pool *SessionPool, sample []float32) []float32 {
	t.Helper()
	in := tensor.FromSlice(append([]float32(nil), sample...), 1, 3, 8, 8)
	outs, err := pool.Run(context.Background(), map[string]*tensor.Tensor{"x": in})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range outs {
		return v.Data()
	}
	t.Fatal("no output")
	return nil
}

func TestBatcherServesAndMatchesReference(t *testing.T) {
	b, pool := newTestBatcher(t, 4, BatcherOptions{FlushDeadline: 2 * time.Millisecond}, nil)
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sample := sampleFor(c % 3)
			res, err := b.Submit(context.Background(), sample, 0)
			if err != nil {
				errs[c] = err
				return
			}
			if res.BatchSize < 1 || res.BatchSize > 4 {
				errs[c] = fmt.Errorf("batch size %d outside 1..4", res.BatchSize)
				return
			}
			want := referenceRow(t, pool, sample)
			for i := range res.Output {
				if res.Output[i] != want[i] {
					errs[c] = fmt.Errorf("output[%d] = %v, want %v", i, res.Output[i], want[i])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", c, err)
		}
	}
	if b.Runs() < 1 {
		t.Error("batcher reports no runs after serving requests")
	}
}

// TestBatcherCancelWhileQueuedSkipsPlan asserts the core lifecycle
// guarantee: a context cancelled while the request is queued returns
// context.Canceled and the plan never executes for it.
func TestBatcherCancelWhileQueuedSkipsPlan(t *testing.T) {
	b, _ := newTestBatcher(t, 4, BatcherOptions{FlushDeadline: 150 * time.Millisecond}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit(ctx, sampleFor(1), 0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the collector receive the request
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled queued Submit returned %v, want context.Canceled", err)
		}
	case <-time.After(100 * time.Millisecond):
		t.Fatal("cancelled Submit did not return before the flush deadline")
	}
	// Flush deadline passes; the abandoned request must not have run.
	time.Sleep(200 * time.Millisecond)
	if got := b.Runs(); got != 0 {
		t.Fatalf("plan ran %d times for a request cancelled while queued, want 0", got)
	}
}

// TestBatcherDeadlineDuringExecutionStillDelivers asserts the other half
// of the lifecycle: once a batch has claimed a request, its completed
// result is delivered even if the submitter's deadline expires while the
// batch executes.
func TestBatcherDeadlineDuringExecutionStillDelivers(t *testing.T) {
	// ~7 nodes × 10ms ≈ 70ms per run; the 30ms context deadline expires
	// mid-execution.
	b, pool := newTestBatcher(t, 2, BatcherOptions{FlushDeadline: time.Millisecond}, slowPolicy{delay: 10 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	sample := sampleFor(2)
	res, err := b.Submit(ctx, sample, 0)
	if err != nil {
		t.Fatalf("Submit returned %v; a claimed request must deliver its completed result", err)
	}
	if ctx.Err() == nil {
		t.Skip("run finished before the deadline; timing too coarse to assert")
	}
	want := referenceRow(t, pool, sample)
	for i := range res.Output {
		if res.Output[i] != want[i] {
			t.Fatalf("delivered result diverged from reference at %d", i)
		}
	}
}

// TestBatcherCloseDrains asserts graceful drain: requests in flight at
// Close complete (or fail fast with ErrClosed if never handed over), and
// every Submit after Close fails with ErrClosed without executing.
func TestBatcherCloseDrains(t *testing.T) {
	b, _ := newTestBatcher(t, 4, BatcherOptions{FlushDeadline: 50 * time.Millisecond}, slowPolicy{delay: 2 * time.Millisecond})
	const clients = 6
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, errs[c] = b.Submit(context.Background(), sampleFor(c), 0)
		}(c)
	}
	time.Sleep(10 * time.Millisecond) // in-flight: some gathered, some queued
	b.Close()
	wg.Wait()
	for c, err := range errs {
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("client %d: %v, want nil or ErrClosed", c, err)
		}
	}
	runsAtClose := b.Runs()
	if _, err := b.Submit(context.Background(), sampleFor(0), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close returned %v, want ErrClosed", err)
	}
	if b.Runs() != runsAtClose {
		t.Fatal("Submit after Close executed a plan")
	}
}

func TestBatcherImmediateMode(t *testing.T) {
	b, pool := newTestBatcher(t, 4, BatcherOptions{Immediate: true}, nil)
	// A lone request must be served without waiting for peers.
	sample := sampleFor(5)
	start := time.Now()
	res, err := b.Submit(context.Background(), sample, 0)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("immediate-mode lone request took %v", elapsed)
	}
	want := referenceRow(t, pool, sample)
	for i := range res.Output {
		if res.Output[i] != want[i] {
			t.Fatalf("immediate-mode output diverged at %d", i)
		}
	}
	// Concurrent fire still coalesces only what is queued; all served.
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), sampleFor(c), 0); err != nil {
				t.Errorf("client %d: %v", c, err)
			}
		}(c)
	}
	wg.Wait()
}

func TestBatcherTypedErrors(t *testing.T) {
	b, _ := newTestBatcher(t, 2, BatcherOptions{}, nil)
	if _, err := b.Submit(context.Background(), []float32{1, 2, 3}, 0); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("short sample returned %v, want ErrShapeMismatch", err)
	}

	// Multi-input plans are rejected at construction.
	g := graph.New("two-in")
	a, _ := g.Input("a", []int{1, 8})
	c, _ := g.Input("b", []int{1, 8})
	s, _ := g.Add("Add", "sum", nil, a, c)
	_ = g.MarkOutput(s)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatcher(NewSessionPool(plan), BatcherOptions{}); err == nil {
		t.Fatal("NewBatcher accepted a two-input plan")
	}
}

// TestBatcherSubmitCancelCloseStress is the -race gauntlet over the full
// lifecycle: concurrent submitters, random cancellation, a flusher, and a
// final Close racing in-flight work.
func TestBatcherSubmitCancelCloseStress(t *testing.T) {
	b, pool := newTestBatcher(t, 3, BatcherOptions{FlushDeadline: time.Millisecond}, nil)
	wants := make([][]float32, 3)
	for k := range wants {
		wants[k] = referenceRow(t, pool, sampleFor(k))
	}
	const goroutines = 8
	const iters = 15
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(gi)))
			for i := 0; i < iters; i++ {
				k := (gi + i) % len(wants)
				ctx, cancel := context.WithCancel(context.Background())
				if rng.Intn(3) == 0 {
					delay := time.Duration(rng.Intn(300)) * time.Microsecond
					go func() {
						time.Sleep(delay)
						cancel()
					}()
				}
				res, err := b.Submit(ctx, sampleFor(k), time.Duration(rng.Intn(3))*time.Millisecond)
				cancel()
				if err != nil {
					if !errors.Is(err, context.Canceled) && !errors.Is(err, ErrClosed) {
						t.Errorf("goroutine %d iter %d: %v", gi, i, err)
						return
					}
					continue
				}
				for j := range res.Output {
					if res.Output[j] != wants[k][j] {
						t.Errorf("goroutine %d iter %d: output bled across requests", gi, i)
						return
					}
				}
				if i%5 == 0 {
					b.Flush()
				}
			}
		}(gi)
	}
	wg.Wait()
	b.Close()
	if _, err := b.Submit(context.Background(), sampleFor(0), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-stress Submit after Close returned %v, want ErrClosed", err)
	}
}

// TestBatcherStats pins the observability counters: every served request
// is counted once, flush causes classify launches, queued wait
// accumulates, and the depth gauge returns to zero when idle.
func TestBatcherStats(t *testing.T) {
	b, _ := newTestBatcher(t, 4, BatcherOptions{FlushDeadline: 2 * time.Millisecond}, nil)
	const clients = 9
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), sampleFor(c), 0); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()
	st := b.Stats()
	if st.Requests != clients {
		t.Errorf("Requests = %d, want %d", st.Requests, clients)
	}
	if st.Runs != b.Runs() || st.Runs < 1 {
		t.Errorf("Runs = %d (batcher reports %d)", st.Runs, b.Runs())
	}
	if got := st.FlushFull + st.FlushDeadline + st.FlushImmediate + st.FlushExplicit + st.FlushClose; got != st.Runs {
		// Every launched batch in this test claims at least one request,
		// so flush causes and runs must agree.
		t.Errorf("flush causes sum to %d, runs = %d", got, st.Runs)
	}
	if st.QueueDepth != 0 {
		t.Errorf("QueueDepth = %d after drain, want 0", st.QueueDepth)
	}
	if st.QueuedWait < 0 {
		t.Errorf("QueuedWait = %v, want >= 0", st.QueuedWait)
	}
	if st.FlushImmediate != 0 {
		t.Errorf("FlushImmediate = %d on a deadline batcher", st.FlushImmediate)
	}
	var histTotal int64
	for _, n := range st.WaitHistogram {
		histTotal += n
	}
	if histTotal != st.Requests {
		// Every claimed request lands in exactly one wait bucket, so the
		// histogram and the Requests counter cover the same population.
		t.Errorf("WaitHistogram sums to %d, Requests = %d", histTotal, st.Requests)
	}
}

// TestWaitBucket pins the histogram bucketing: bounds are inclusive and
// anything past the last bound lands in the overflow bucket.
func TestWaitBucket(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{100 * time.Microsecond, 0},
		{101 * time.Microsecond, 1},
		{time.Millisecond, 3},
		{2 * time.Millisecond, 4},
		{25 * time.Millisecond, 7},
		{26 * time.Millisecond, WaitBuckets - 1},
		{time.Hour, WaitBuckets - 1},
	}
	for _, c := range cases {
		if got := waitBucket(c.d); got != c.want {
			t.Errorf("waitBucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestBatcherStatsCancelledNotServed asserts a request abandoned while
// queued never counts as served and leaves the depth gauge balanced.
func TestBatcherStatsCancelledNotServed(t *testing.T) {
	b, _ := newTestBatcher(t, 4, BatcherOptions{FlushDeadline: 200 * time.Millisecond}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit(ctx, sampleFor(1), 0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it queue
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit = %v, want context.Canceled", err)
	}
	b.Flush() // release the gathering batch; it claims nothing
	time.Sleep(10 * time.Millisecond)
	st := b.Stats()
	if st.Requests != 0 {
		t.Errorf("Requests = %d, want 0", st.Requests)
	}
	if st.QueueDepth != 0 {
		t.Errorf("QueueDepth = %d, want 0", st.QueueDepth)
	}
	if st.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", st.Cancelled)
	}
	if st.Rejected != 0 {
		t.Errorf("Rejected = %d, want 0 — cancellation must not count as shedding", st.Rejected)
	}
}

// TestBatcherStatsImmediate pins the immediate-mode flush counter.
func TestBatcherStatsImmediate(t *testing.T) {
	b, _ := newTestBatcher(t, 4, BatcherOptions{Immediate: true}, nil)
	if _, err := b.Submit(context.Background(), sampleFor(0), 0); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.FlushImmediate != 1 || st.Requests != 1 {
		t.Errorf("stats = %+v, want one immediate flush serving one request", st)
	}
}

// TestSubmitStagedMatchesSubmit pins the zero-copy staging hook: staged
// and copied submissions of the same samples produce identical results,
// the stage callback runs exactly once per claimed request and receives a
// dst of exactly SampleVolume values, and a nil callback is rejected with
// a typed error.
func TestSubmitStagedMatchesSubmit(t *testing.T) {
	b, pool := newTestBatcher(t, 4, BatcherOptions{FlushDeadline: 5 * time.Millisecond}, nil)
	if b.SampleVolume() != 3*8*8 {
		t.Fatalf("SampleVolume = %d, want %d", b.SampleVolume(), 3*8*8)
	}
	if _, err := b.SubmitStaged(context.Background(), nil, 0); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("nil stage callback error = %v, want ErrShapeMismatch", err)
	}

	const clients = 8
	var wg sync.WaitGroup
	var stageCalls atomic.Int64
	outs := make([][]float32, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sample := sampleFor(i % 3)
			var res BatchResult
			var err error
			if i%2 == 0 {
				res, err = b.Submit(context.Background(), sample, 0)
			} else {
				res, err = b.SubmitStaged(context.Background(), func(dst []float32) {
					stageCalls.Add(1)
					if len(dst) != len(sample) {
						errs[i] = fmt.Errorf("stage dst has %d values, want %d", len(dst), len(sample))
						return
					}
					copy(dst, sample)
				}, 0)
			}
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = res.Output
		}(i)
	}
	wg.Wait()
	if got := stageCalls.Load(); got != clients/2 {
		t.Fatalf("stage callback ran %d times, want %d", got, clients/2)
	}
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		want := referenceRow(t, pool, sampleFor(i%3))
		for j := range want {
			if outs[i][j] != want[j] {
				t.Fatalf("client %d diverged from reference at %d (staged=%v)", i, j, i%2 == 1)
			}
		}
	}
}

// TestSubmitStagedCancelledNeverStages pins the claim contract on the
// staged path: a request abandoned by its context while queued never has
// its stage callback invoked.
func TestSubmitStagedCancelledNeverStages(t *testing.T) {
	// A long flush deadline holds the request queued; cancelling during
	// the gather must abandon it before staging.
	b, _ := newTestBatcher(t, 4, BatcherOptions{FlushDeadline: time.Minute}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	staged := make(chan struct{}, 1)
	done := make(chan error, 1)
	go func() {
		_, err := b.SubmitStaged(ctx, func(dst []float32) { staged <- struct{}{} }, 0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled staged submit = %v, want context.Canceled", err)
	}
	select {
	case <-staged:
		t.Fatal("stage callback ran for a cancelled-while-queued request")
	case <-time.After(50 * time.Millisecond):
	}
}

// TestBatcherAdaptiveFlush pins the load-adaptive deadline: a backlog
// shrinks each member's flush deadline (so the batch launches well
// before the configured wait), while a lone request on the drained
// batcher keeps the full deadline — the shrink is per-request, so idle
// restores it with no decay machinery.
func TestBatcherAdaptiveFlush(t *testing.T) {
	const deadline = 120 * time.Millisecond
	const clients = 4 // MaxBatch 8: the batch can only flush by deadline
	burst := func(b *Batcher) time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				if _, err := b.Submit(context.Background(), sampleFor(c), 0); err != nil {
					t.Error(err)
				}
			}(c)
		}
		wg.Wait()
		return time.Since(start)
	}

	fixed, _ := newTestBatcher(t, 8, BatcherOptions{FlushDeadline: deadline}, nil)
	if got := burst(fixed); got < deadline {
		t.Fatalf("fixed-deadline burst finished in %v, cannot flush before %v", got, deadline)
	}

	ad, _ := newTestBatcher(t, 8, BatcherOptions{FlushDeadline: deadline, Adaptive: true}, nil)
	if got := burst(ad); got >= deadline {
		t.Fatalf("adaptive burst took %v, want < %v (backlog should shrink the deadline)", got, deadline)
	}
	st := ad.Stats()
	if st.AdaptiveCuts < 1 {
		t.Fatalf("AdaptiveCuts = %d after a %d-wide burst, want >= 1", st.AdaptiveCuts, clients)
	}
	if st.FlushDeadline < 1 {
		t.Fatalf("FlushDeadline = %d, the shrunk wait still flushes via the timer", st.FlushDeadline)
	}

	// Idle again: a lone request sees depth 0 and keeps the full wait.
	lone := time.Now()
	if _, err := ad.Submit(context.Background(), sampleFor(9), 0); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(lone); got < deadline {
		t.Fatalf("lone request flushed in %v, want the restored %v deadline", got, deadline)
	}
	if got := ad.Stats().AdaptiveCuts; got != st.AdaptiveCuts {
		t.Fatalf("lone request bumped AdaptiveCuts %d -> %d; idle must not shrink", st.AdaptiveCuts, got)
	}
}
