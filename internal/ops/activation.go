package ops

import (
	"math"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// Elementwise activations. Each is also available fused into Conv/Dense via
// the "activation" attribute (set by the fusion pass); the standalone
// kernels below serve unfused graphs.
func init() {
	Register(NewOverwritingKernel("relu.direct", "Relu", nil, runRelu))
	Register(NewOverwritingKernel("relu6.direct", "Relu6", nil, runRelu6))
	Register(NewOverwritingKernel("leakyrelu.direct", "LeakyRelu", nil, runLeakyRelu))
	Register(NewOverwritingKernel("sigmoid.direct", "Sigmoid", nil, runSigmoid))
}

func runRelu(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	x, y := in[0].Data(), out[0].Data()
	for i, v := range x {
		if v < 0 {
			y[i] = 0
		} else {
			y[i] = v
		}
	}
	return nil
}

func runRelu6(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	x, y := in[0].Data(), out[0].Data()
	for i, v := range x {
		switch {
		case v < 0:
			y[i] = 0
		case v > 6:
			y[i] = 6
		default:
			y[i] = v
		}
	}
	return nil
}

func runLeakyRelu(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	alpha := float32(n.Attrs.Float("alpha", 0.01))
	x, y := in[0].Data(), out[0].Data()
	for i, v := range x {
		if v < 0 {
			y[i] = alpha * v
		} else {
			y[i] = v
		}
	}
	return nil
}

func runSigmoid(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	x, y := in[0].Data(), out[0].Data()
	for i, v := range x {
		y[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return nil
}
