package runtime

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"orpheus/internal/faultinject"
	"orpheus/internal/tensor"
)

// faultedPool compiles smallCNN with a fault injector installed and wraps
// a session pool around it.
func faultedPool(t *testing.T, maxBatch int, fi *faultinject.Injector) *SessionPool {
	t.Helper()
	plan, err := Compile(smallCNN(t), Options{MaxBatch: maxBatch, Fault: fi})
	if err != nil {
		t.Fatal(err)
	}
	return NewSessionPool(plan)
}

// TestPlanPanicIsTypedAndQuarantines drives a panic through a plan step
// and pins the containment contract end to end: the caller gets a typed
// *PlanPanicError naming the step (never a crash), the poisoned session
// is quarantined by the pool, and the pool keeps serving correct results
// on fresh sessions afterwards.
func TestPlanPanicIsTypedAndQuarantines(t *testing.T) {
	fi := faultinject.New(1, &faultinject.Rule{Step: "fc", Action: faultinject.ActPanic, Times: 1})
	pool := faultedPool(t, 1, fi)
	in := tensor.FromSlice(sampleFor(0), 1, 3, 8, 8)

	_, err := pool.Run(context.Background(), map[string]*tensor.Tensor{"x": in})
	if !errors.Is(err, ErrPlanPanic) {
		t.Fatalf("poisoned run returned %v, want ErrPlanPanic", err)
	}
	var pp *PlanPanicError
	if !errors.As(err, &pp) {
		t.Fatalf("error %v does not unwrap to *PlanPanicError", err)
	}
	if pp.Model != "smallcnn" || pp.Node != "fc" || pp.Op != "Dense" {
		t.Fatalf("panic error identifies %s/%s (%s), want smallcnn/fc (Dense)", pp.Model, pp.Node, pp.Op)
	}
	if _, ok := pp.Value.(*faultinject.PanicValue); !ok {
		t.Fatalf("recovered value is %T, want *faultinject.PanicValue", pp.Value)
	}
	if q := pool.Quarantined(); q != 1 {
		t.Fatalf("Quarantined = %d, want 1", q)
	}

	// The rule is spent (Times: 1); the pool must serve clean requests on a
	// fresh session, matching an uninjected reference plan.
	cleanPool := faultedPool(t, 1, nil)
	want := referenceRow(t, cleanPool, sampleFor(0))
	outs, err := pool.Run(context.Background(), map[string]*tensor.Tensor{"x": in})
	if err != nil {
		t.Fatalf("run after quarantine failed: %v", err)
	}
	for _, v := range outs {
		got := v.Data()
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("post-quarantine output diverged at %d", j)
			}
		}
	}
	if q := pool.Quarantined(); q != 1 {
		t.Fatalf("Quarantined = %d after clean run, want still 1", q)
	}
}

// TestInjectedErrorFailsRequestOnly pins the error path of the fault
// hook: an injected step error fails the request with a typed, wrapped
// error but does not poison the session — errors are clean control flow,
// only panics leave the arena suspect.
func TestInjectedErrorFailsRequestOnly(t *testing.T) {
	fi := faultinject.New(1, &faultinject.Rule{Step: "relu1", Action: faultinject.ActError, Times: 1})
	pool := faultedPool(t, 1, fi)
	in := tensor.FromSlice(sampleFor(1), 1, 3, 8, 8)

	_, err := pool.Run(context.Background(), map[string]*tensor.Tensor{"x": in})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("faulted run returned %v, want ErrInjected", err)
	}
	if errors.Is(err, ErrPlanPanic) {
		t.Fatal("injected error must not read as a panic")
	}
	if q := pool.Quarantined(); q != 0 {
		t.Fatalf("Quarantined = %d, want 0 — errors do not poison sessions", q)
	}
	if _, err := pool.Run(context.Background(), map[string]*tensor.Tensor{"x": in}); err != nil {
		t.Fatalf("run after injected error failed: %v", err)
	}
}

// TestBatcherBoundedAdmission pins the shedding contract
// deterministically: two requests held in the gather phase fill the
// bounded queue to its cap, a third is rejected immediately with
// ErrOverloaded, and after an explicit flush the admitted pair completes
// with correct outputs while only the Rejected counter absorbed the shed
// request.
func TestBatcherBoundedAdmission(t *testing.T) {
	b, pool := newTestBatcher(t, 4,
		BatcherOptions{FlushDeadline: 10 * time.Second, QueueDepth: 2}, nil)
	want := referenceRow(t, pool, sampleFor(0))

	// Two requests sit gathering (the flush deadline is far away), holding
	// the queue at its cap.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := b.Submit(context.Background(), sampleFor(0), 0)
			if err != nil {
				t.Errorf("admitted request failed: %v", err)
				return
			}
			for j := range res.Output {
				if res.Output[j] != want[j] {
					t.Errorf("admitted request got wrong output at %d", j)
					return
				}
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().QueueDepth < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled to its cap")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// The queue is at its cap: the next Submit must shed, immediately.
	start := time.Now()
	_, err := b.Submit(context.Background(), sampleFor(0), 0)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-cap Submit returned %v, want ErrOverloaded", err)
	}
	if since := time.Since(start); since > time.Second {
		t.Fatalf("rejection took %v — shedding must not wait", since)
	}

	b.Flush()
	wg.Wait()
	st := b.Stats()
	if st.Rejected != 1 {
		t.Errorf("Stats.Rejected = %d, want 1", st.Rejected)
	}
	if st.Requests != 2 {
		t.Errorf("Stats.Requests = %d, want 2", st.Requests)
	}
	if st.QueueDepth != 0 {
		t.Errorf("QueueDepth = %d after drain, want 0", st.QueueDepth)
	}
}

// TestBatcherRunTimeoutBoundsExecution pins WithRunTimeout: a run that
// exceeds the execution budget is cancelled at a step boundary and its
// requests fail with context.DeadlineExceeded — queue wait is not
// counted, run time is.
func TestBatcherRunTimeoutBoundsExecution(t *testing.T) {
	// Six plan steps at 20ms each ≈ 120ms of run time against a 25ms cap.
	b, _ := newTestBatcher(t, 2,
		BatcherOptions{FlushDeadline: time.Millisecond, RunTimeout: 25 * time.Millisecond},
		slowPolicy{delay: 20 * time.Millisecond})
	_, err := b.Submit(context.Background(), sampleFor(0), 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("overlong run returned %v, want context.DeadlineExceeded", err)
	}
}

// TestEstimateWaitFloor pins the Retry-After source: with no history the
// estimate is the flush deadline, and it never sinks below it.
func TestEstimateWaitFloor(t *testing.T) {
	b, _ := newTestBatcher(t, 2, BatcherOptions{FlushDeadline: 5 * time.Millisecond}, nil)
	if got := b.EstimateWait(); got != 5*time.Millisecond {
		t.Fatalf("EstimateWait with no history = %v, want the 5ms flush deadline", got)
	}
	if _, err := b.Submit(context.Background(), sampleFor(0), 0); err != nil {
		t.Fatal(err)
	}
	if got := b.EstimateWait(); got < 5*time.Millisecond {
		t.Fatalf("EstimateWait = %v, want >= the 5ms floor", got)
	}
}

// TestRejectedAfterClose pins the post-Close admission path: Submits fail
// with ErrClosed and count as rejected, not cancelled.
func TestRejectedAfterClose(t *testing.T) {
	b, _ := newTestBatcher(t, 2, BatcherOptions{}, nil)
	b.Close()
	if _, err := b.Submit(context.Background(), sampleFor(0), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	st := b.Stats()
	if st.Rejected != 1 || st.Cancelled != 0 {
		t.Fatalf("Rejected/Cancelled = %d/%d after closed Submit, want 1/0", st.Rejected, st.Cancelled)
	}
}

// TestOverloadBattery is the -race overload gauntlet the fault harness
// exists for: a bounded batcher under sustained concurrent fire while the
// injector kills steps with probabilistic panics, errors and latency, a
// fraction of clients cancel, and Close races the tail. The invariants:
// every Submit returns exactly once with a well-typed outcome, correct
// results stay correct, the process never crashes, and the depth gauge
// balances back to zero.
func TestOverloadBattery(t *testing.T) {
	fi := faultinject.New(7,
		&faultinject.Rule{Step: "conv1", Action: faultinject.ActPanic, Probability: 0.03},
		&faultinject.Rule{Step: "relu1", Action: faultinject.ActError, Probability: 0.05},
		&faultinject.Rule{Step: "pool1", Action: faultinject.ActDelay, Delay: 200 * time.Microsecond, Probability: 0.3},
	)
	pool := faultedPool(t, 4, fi)
	b, err := NewBatcher(pool, BatcherOptions{
		FlushDeadline: 500 * time.Microsecond,
		QueueDepth:    8,
		RunTimeout:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cleanPool := faultedPool(t, 1, nil)
	want := referenceRow(t, cleanPool, sampleFor(3))

	const goroutines = 12
	const iters = 25
	var (
		wg                              sync.WaitGroup
		outcomes                        atomic.Int64
		ok, overload, panicked, injured atomic.Int64
		cancelled, closed               atomic.Int64
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				if (g+i)%5 == 0 {
					go func() {
						time.Sleep(300 * time.Microsecond)
						cancel()
					}()
				}
				res, err := b.Submit(ctx, sampleFor(3), 0)
				cancel()
				outcomes.Add(1)
				switch {
				case err == nil:
					ok.Add(1)
					if len(res.Output) != len(want) {
						t.Errorf("goroutine %d iter %d: output has %d values, want %d", g, i, len(res.Output), len(want))
						return
					}
					for j := range want {
						if res.Output[j] != want[j] {
							t.Errorf("goroutine %d iter %d: output corrupted at %d", g, i, j)
							return
						}
					}
				case errors.Is(err, ErrOverloaded):
					overload.Add(1)
				case errors.Is(err, ErrPlanPanic):
					panicked.Add(1)
				case errors.Is(err, faultinject.ErrInjected):
					injured.Add(1)
				case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
					cancelled.Add(1)
				case errors.Is(err, ErrClosed):
					closed.Add(1)
				default:
					t.Errorf("goroutine %d iter %d: untyped outcome %v", g, i, err)
					return
				}
			}
		}(g)
	}
	// Close races the last wave: half the submitters are still firing when
	// the drain starts.
	time.Sleep(20 * time.Millisecond)
	b.Close()
	wg.Wait()

	if got := outcomes.Load(); got != goroutines*iters {
		t.Fatalf("%d outcomes for %d submits — a request vanished or doubled", got, goroutines*iters)
	}
	if ok.Load() == 0 {
		t.Error("no request succeeded under fault load")
	}
	st := b.Stats()
	if st.QueueDepth != 0 {
		t.Errorf("QueueDepth = %d after full drain, want 0", st.QueueDepth)
	}
	panics, injErrs, delays := fi.Counts()
	if panics > 0 && pool.Quarantined() == 0 {
		t.Errorf("injector fired %d panics but no session was quarantined", panics)
	}
	t.Logf("outcomes: %d ok, %d overloaded, %d panicked, %d injected, %d cancelled, %d closed; injector fired %d panics, %d errors, %d delays; %d sessions quarantined",
		ok.Load(), overload.Load(), panicked.Load(), injured.Load(), cancelled.Load(), closed.Load(),
		panics, injErrs, delays, pool.Quarantined())
}

// TestFaultHookKeepsRunAllocFree pins the zero-cost claim of the harness:
// with an injector installed whose rules never match, the steady-state
// Session.Run loop — now passing through the panic barrier and the fault
// hook on every step — still performs zero heap allocations.
func TestFaultHookKeepsRunAllocFree(t *testing.T) {
	fi := faultinject.New(1, &faultinject.Rule{Model: "some-other-model", Action: faultinject.ActPanic})
	plan, err := Compile(smallCNN(t), Options{Fault: fi})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(plan)
	in := tensor.FromSlice(sampleFor(2), 1, 3, 8, 8)
	inputs := map[string]*tensor.Tensor{"x": in}
	ctx := context.Background()
	if _, err := sess.Run(ctx, inputs); err != nil { // warm the bindings
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := sess.Run(ctx, inputs); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Run with inert fault hook allocates %.1f objects/op, want 0", avg)
	}
}
