// Package graph defines the Orpheus computation-graph intermediate
// representation: a directed acyclic graph of operator nodes over named
// values. Models imported from ONNX, built programmatically (internal/zoo),
// or produced by the optimisation passes (internal/passes) all use this IR;
// the runtime executes it.
//
// A Value is a named tensor slot: a graph input, a constant (weight), or
// the output of a node. A Node applies one operator to input values and
// produces output values. Operator semantics (shape inference, kernels)
// live in internal/ops and are attached through the registry in this
// package so graph does not depend on ops.
package graph

import (
	"fmt"
	"sort"

	"orpheus/internal/tensor"
)

// Value is a named tensor slot in a graph.
type Value struct {
	Name  string
	Shape []int          // inferred or declared shape; nil until inference
	Const *tensor.Tensor // non-nil for weights/initialisers

	// Batched marks a graph input whose leading dimension is a batch of
	// independent samples (the NCHW/[N,K] convention used throughout
	// Orpheus). Rebatch rewrites that dimension; shape inference then
	// propagates the new batch through the graph. Input sets it for every
	// input of rank ≥ 2 (rank-1 inputs are treated as per-model vectors,
	// not batches of scalars); override it for inputs that deviate from
	// the convention.
	Batched bool

	// Producer is the node that outputs this value, nil for graph inputs
	// and constants.
	Producer *Node
}

// IsConst reports whether the value is a constant (weight/initialiser).
func (v *Value) IsConst() bool { return v.Const != nil }

// Node is a single operator application.
type Node struct {
	Name    string
	Op      string // operator type, e.g. "Conv", "Relu"
	Attrs   Attrs
	Inputs  []*Value
	Outputs []*Value
}

// Graph is a DAG of nodes over values. Build one with New, Input, Const and
// Add, mark result values with MarkOutput, then call Finalize.
type Graph struct {
	Name    string
	Nodes   []*Node
	Inputs  []*Value
	Outputs []*Value

	values map[string]*Value
}

// New returns an empty graph.
func New(name string) *Graph {
	return &Graph{Name: name, values: make(map[string]*Value)}
}

// Input declares a graph input with the given shape and returns its value.
func (g *Graph) Input(name string, shape []int) (*Value, error) {
	v, err := g.newValue(name)
	if err != nil {
		return nil, err
	}
	v.Shape = copyShape(shape)
	v.Batched = len(shape) >= 2
	g.Inputs = append(g.Inputs, v)
	return v, nil
}

// Rebatch sets the leading (batch) dimension of every batched graph input
// to n and re-runs shape inference, so every downstream value shape carries
// the new batch. The graph's shape functions treat the leading dimension
// symbolically — they propagate whatever N the inputs declare — which is
// what makes one graph definition serve any runtime batch size.
func (g *Graph) Rebatch(n int) error {
	if n < 1 {
		return fmt.Errorf("graph %q: batch %d < 1", g.Name, n)
	}
	for _, in := range g.Inputs {
		if in.Batched && len(in.Shape) > 0 {
			in.Shape[0] = n
		}
	}
	if err := g.TopoSort(); err != nil {
		return err
	}
	return g.InferShapes()
}

// copyShape copies a shape, returning a non-nil (possibly empty) slice so
// that "scalar" (rank 0) is distinguishable from "shape not yet inferred"
// (nil).
func copyShape(s []int) []int {
	c := make([]int, len(s))
	copy(c, s)
	return c
}

// Const declares a constant (weight) value holding t.
func (g *Graph) Const(name string, t *tensor.Tensor) (*Value, error) {
	v, err := g.newValue(name)
	if err != nil {
		return nil, err
	}
	v.Const = t
	v.Shape = copyShape(t.Shape())
	return v, nil
}

// Add appends a single-output node applying op to the inputs and returns the
// output value, named "<name>_out".
func (g *Graph) Add(op, name string, attrs Attrs, inputs ...*Value) (*Value, error) {
	outs, err := g.AddMulti(op, name, attrs, inputs, []string{name + "_out"})
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// AddMulti appends a node with explicitly named outputs.
func (g *Graph) AddMulti(op, name string, attrs Attrs, inputs []*Value, outNames []string) ([]*Value, error) {
	if op == "" {
		return nil, fmt.Errorf("graph %q: node %q has empty op", g.Name, name)
	}
	for i, in := range inputs {
		if in == nil {
			return nil, fmt.Errorf("graph %q: node %q input %d is nil", g.Name, name, i)
		}
		if g.values[in.Name] != in {
			return nil, fmt.Errorf("graph %q: node %q input %q does not belong to this graph", g.Name, name, in.Name)
		}
	}
	if attrs == nil {
		attrs = Attrs{}
	}
	n := &Node{Name: name, Op: op, Attrs: attrs, Inputs: append([]*Value(nil), inputs...)}
	for _, on := range outNames {
		v, err := g.newValue(on)
		if err != nil {
			return nil, err
		}
		v.Producer = n
		n.Outputs = append(n.Outputs, v)
	}
	g.Nodes = append(g.Nodes, n)
	return n.Outputs, nil
}

// MarkOutput declares v as a graph output.
func (g *Graph) MarkOutput(v *Value) error {
	if g.values[v.Name] != v {
		return fmt.Errorf("graph %q: output %q does not belong to this graph", g.Name, v.Name)
	}
	for _, o := range g.Outputs {
		if o == v {
			return nil
		}
	}
	g.Outputs = append(g.Outputs, v)
	return nil
}

// Value returns the value with the given name, or nil.
func (g *Graph) Value(name string) *Value { return g.values[name] }

// ValueNames returns all value names in sorted order (for stable listings).
func (g *Graph) ValueNames() []string {
	names := make([]string, 0, len(g.values))
	for n := range g.values {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (g *Graph) newValue(name string) (*Value, error) {
	if name == "" {
		return nil, fmt.Errorf("graph %q: empty value name", g.Name)
	}
	if _, dup := g.values[name]; dup {
		return nil, fmt.Errorf("graph %q: duplicate value name %q", g.Name, name)
	}
	v := &Value{Name: name}
	g.values[name] = v
	return v, nil
}

// Consumers returns, for every value, the nodes that read it. Recomputed on
// demand; passes call it after each mutation.
func (g *Graph) Consumers() map[*Value][]*Node {
	m := make(map[*Value][]*Node)
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			m[in] = append(m[in], n)
		}
	}
	return m
}

// TopoSort orders g.Nodes topologically (inputs before consumers). It
// returns an error if the graph contains a cycle.
func (g *Graph) TopoSort() error {
	indeg := make(map[*Node]int, len(g.Nodes))
	dependents := make(map[*Node][]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if p := in.Producer; p != nil {
				indeg[n]++
				dependents[p] = append(dependents[p], n)
			}
		}
	}
	// Seed the queue in current node order for stability.
	queue := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	sorted := make([]*Node, 0, len(g.Nodes))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		sorted = append(sorted, n)
		for _, d := range dependents[n] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(sorted) != len(g.Nodes) {
		return fmt.Errorf("graph %q: cycle detected (%d of %d nodes sorted)", g.Name, len(sorted), len(g.Nodes))
	}
	g.Nodes = sorted
	return nil
}

// Validate checks structural invariants: node inputs exist and are
// produced, constants have tensors, outputs are reachable, no cycles.
func (g *Graph) Validate() error {
	if err := g.TopoSort(); err != nil {
		return err
	}
	produced := make(map[*Value]bool)
	for _, v := range g.Inputs {
		produced[v] = true
	}
	for _, v := range g.values {
		if v.IsConst() {
			produced[v] = true
		}
	}
	for _, n := range g.Nodes {
		if len(n.Outputs) == 0 {
			return fmt.Errorf("graph %q: node %q has no outputs", g.Name, n.Name)
		}
		for _, in := range n.Inputs {
			if !produced[in] {
				return fmt.Errorf("graph %q: node %q reads %q before it is produced", g.Name, n.Name, in.Name)
			}
		}
		for _, out := range n.Outputs {
			if out.Producer != n {
				return fmt.Errorf("graph %q: output %q of node %q has wrong producer", g.Name, out.Name, n.Name)
			}
			produced[out] = true
		}
	}
	if len(g.Outputs) == 0 {
		return fmt.Errorf("graph %q: no outputs marked", g.Name)
	}
	for _, o := range g.Outputs {
		if !produced[o] {
			return fmt.Errorf("graph %q: output %q is never produced", g.Name, o.Name)
		}
	}
	return nil
}

// RemoveNode deletes n, which must have no remaining consumers of its
// outputs (callers rewire uses first with ReplaceUses).
func (g *Graph) RemoveNode(n *Node) error {
	consumers := g.Consumers()
	for _, out := range n.Outputs {
		if len(consumers[out]) > 0 {
			return fmt.Errorf("graph %q: cannot remove node %q: output %q still consumed", g.Name, n.Name, out.Name)
		}
		for _, o := range g.Outputs {
			if o == out {
				return fmt.Errorf("graph %q: cannot remove node %q: output %q is a graph output", g.Name, n.Name, out.Name)
			}
		}
	}
	for i, m := range g.Nodes {
		if m == n {
			g.Nodes = append(g.Nodes[:i], g.Nodes[i+1:]...)
			for _, out := range n.Outputs {
				delete(g.values, out.Name)
			}
			return nil
		}
	}
	return fmt.Errorf("graph %q: node %q not found", g.Name, n.Name)
}

// ReplaceUses rewires every read of old to read new instead, including the
// graph output list.
func (g *Graph) ReplaceUses(old, new *Value) {
	for _, n := range g.Nodes {
		for i, in := range n.Inputs {
			if in == old {
				n.Inputs[i] = new
			}
		}
	}
	for i, o := range g.Outputs {
		if o == old {
			g.Outputs[i] = new
		}
	}
}

// Finalize validates the graph and runs shape inference. Call it after
// construction and after any pass pipeline.
func (g *Graph) Finalize() error {
	if err := g.Validate(); err != nil {
		return err
	}
	return g.InferShapes()
}

// NumParams returns the total number of elements across constant values.
func (g *Graph) NumParams() int64 {
	var n int64
	for _, v := range g.values {
		if v.IsConst() {
			n += int64(v.Const.Size())
		}
	}
	return n
}

// OpCounts returns how many nodes of each operator type the graph has.
func (g *Graph) OpCounts() map[string]int {
	m := make(map[string]int)
	for _, n := range g.Nodes {
		m[n.Op]++
	}
	return m
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(%s: %d nodes, %d inputs, %d outputs, %d params)",
		g.Name, len(g.Nodes), len(g.Inputs), len(g.Outputs), g.NumParams())
}
