package gemm

import (
	"strings"
	"testing"
)

// The ORPHEUS_GEMM_KERNEL guard: a requested kernel that exists on this
// CPU is honoured silently; a known family that is not selectable here
// warns and falls through to the default; an unknown name is ignored with
// a GODEBUG-style warning. Both the fp32 and int8 registries follow the
// same contract.

func TestResolveKernelEnvGuard(t *testing.T) {
	def, warn := resolveKernel("")
	if warn != "" {
		t.Fatalf("empty env produced warning %q", warn)
	}
	for _, n := range KernelNames() {
		k, warn := resolveKernel(n)
		if k.name != n {
			t.Fatalf("resolveKernel(%q) selected %q", n, k.name)
		}
		if warn != "" {
			t.Fatalf("resolveKernel(%q) warned for a selectable kernel: %q", n, warn)
		}
	}
	// A recognised family that this CPU cannot run: simulate by clearing
	// the SIMD registry so every non-go family is unavailable, which keeps
	// the test meaningful on hosts with full SIMD support.
	saved := simdKernels
	simdKernels = nil
	defer func() { simdKernels = saved }()
	for _, fam := range []string{"avx2", "avx2-6x16", "avx512", "neon"} {
		k, warn := resolveKernel(fam)
		if k.name != goKernel.name {
			t.Fatalf("resolveKernel(%q) with empty registry selected %q, want fallback %q",
				fam, k.name, goKernel.name)
		}
		if !strings.Contains(warn, "not available") {
			t.Fatalf("resolveKernel(%q) warning %q, want unavailable-family message", fam, warn)
		}
	}
	simdKernels = saved
	// Unknown names are typos: ignored with a warning naming the knob.
	k, warn := resolveKernel("no-such-kernel")
	if k.name != def.name {
		t.Fatalf("unknown name changed selection to %q", k.name)
	}
	if !strings.Contains(warn, "ignoring") || !strings.Contains(warn, KernelEnv) {
		t.Fatalf("unknown-name warning %q, want ignoring+%s", warn, KernelEnv)
	}
}

func TestResolveKernel8EnvGuard(t *testing.T) {
	if _, warn := resolveKernel8(""); warn != "" {
		t.Fatalf("empty env produced warning %q", warn)
	}
	avail := map[string]bool{go8Kernel.name: true}
	for _, k := range simd8Kernels {
		avail[k.name] = true
	}
	for n := range avail {
		k, warn := resolveKernel8(n)
		if k.name != n || warn != "" {
			t.Fatalf("resolveKernel8(%q) = %q, warn %q", n, k.name, warn)
		}
	}
	// Known int8 family, unavailable on this CPU (simulated).
	saved := simd8Kernels
	simd8Kernels = nil
	defer func() { simd8Kernels = saved }()
	for _, fam := range []string{"avx2", "vnni"} {
		k, warn := resolveKernel8(fam)
		if k.name != go8Kernel.name {
			t.Fatalf("resolveKernel8(%q) with empty registry selected %q", fam, k.name)
		}
		if !strings.Contains(warn, "not available") {
			t.Fatalf("resolveKernel8(%q) warning %q, want unavailable-family message", fam, warn)
		}
	}
	simd8Kernels = saved
	best, _ := resolveKernel8("")
	// A name from the fp32-only families (e.g. avx512) is not an int8
	// typo: the int8 tier stays quiet and uses its default — the fp32
	// dispatch owns the warning for such names.
	if k, warn := resolveKernel8("avx512"); k.name != best.name || warn != "" {
		t.Fatalf("fp32-family name through int8 tier: %q warn %q, want silent default", k.name, warn)
	}
	if k, warn := resolveKernel8("no-such-kernel"); k.name != best.name || warn != "" {
		t.Fatalf("unknown name through int8 tier: %q warn %q, want silent default", k.name, warn)
	}
}
