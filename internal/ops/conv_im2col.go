package ops

import (
	"orpheus/internal/gemm"
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// conv.im2col — GEMM convolution. This is the Orpheus production path:
// the paper notes "Orpheus uses GEMM convolution, which pays off for big
// matrices". It is *implicit* GEMM: instead of materialising the unfolded
// kdim×cols column matrix and packing panels out of it, a convPackSrc
// (conv_implicit.go) packs each B panel straight from the NCHW input, so
// the unfold scratch and its extra write+read sweep over memory are gone.
// One strided batched call covers the whole batch per group, and the
// bias add and fused activation ride the GEMM epilogue — applied at tile
// store while the tile is cache-hot — instead of two more full-tensor
// sweeps.
//
// The weight matrix is a graph constant, so its packed A-panels are built
// once (first use, cached in the plan-shared ConstCache) and every later
// run skips the packing pass entirely. The GEMM runs in overwrite (beta=0)
// mode, which both lets the runtime skip the arena zero-fill for this
// kernel and keeps repeated runs correct without it.
//
// conv.im2col_explicit keeps the materialised unfold: it is the
// differential reference for the implicit path, the subject of the
// harness `conv` ablation, and the behaviour the per-call-allocation
// framework simulation (DisableScratchReuse) is meant to model — so the
// production kernel delegates to it under that flag.
//
// Groups are handled per group with the batch folded into one strided
// call; a pure depthwise conv is better served by conv.depthwise (this
// kernel still computes it correctly, just slowly).
func init() {
	Register(NewOverwritingKernel("conv.im2col", "Conv", supportsConvNCHW, runConvIm2col))
	Register(NewOverwritingKernel("conv.im2col_explicit", "Conv", supportsConvNCHW, runConvIm2colExplicit))
}

// supportsConvNCHW admits any valid NCHW Conv; NHWC nodes go to the
// layout-aware tier (conv.im2col_nhwc / conv.depthwise_nhwc / conv.direct).
func supportsConvNCHW(n *graph.Node) bool {
	p, err := resolveConv(n)
	if err != nil {
		return false
	}
	return p.layout == ""
}

// packedConvWeights returns the cached prepacked per-group weight panels
// for the node, packing them on first use: groups consecutive buffers of
// PackedASize(coutG, kdim) values each. Returns nil (pack per call, the
// seed behaviour) when scratch reuse is disabled.
func packedConvWeights(ctx *Ctx, n *graph.Node, w []float32, groups, coutG, kdim int) []float32 {
	if ctx.DisableScratchReuse {
		return nil
	}
	if buf := ctx.Cache("conv.im2col/pw", n); buf != nil {
		return buf
	}
	per := gemm.PackedASize(coutG, kdim)
	buf := make([]float32, groups*per)
	for g := 0; g < groups; g++ {
		gemm.PrepackAInto(buf[g*per:], w[g*coutG*kdim:(g+1)*coutG*kdim], coutG, kdim)
	}
	ctx.PutCache("conv.im2col/pw", n, buf)
	return buf
}

// runConvIm2col implements conv.im2col; parallelism follows ctx.Workers
// through the shared GEMM worker pool, with batch×tile scheduling across
// the whole strided call. (The deliberately slow per-group naive variant
// lives in conv.group_im2col.)
func runConvIm2col(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	if ctx.DisableScratchReuse {
		// The per-call-allocation simulation studies frameworks that
		// materialise (and allocate) the unfold per call; keep them on
		// the explicit path.
		return runConvIm2colExplicit(ctx, n, in, out)
	}
	p, err := resolveConvRT(n, in)
	if err != nil {
		return err
	}
	x := in[0].Data()
	w := in[1].Data()
	var bias []float32
	if p.hasBias {
		bias = in[2].Data()
	}
	y := out[0].Data()

	cinG := p.cin / p.groups
	coutG := p.cout / p.groups
	kdim := cinG * p.kh * p.kw
	cols := p.oh * p.ow
	act := gemmActivation(p.activation)

	// Pointwise fast path: a 1x1 stride-1 unpadded convolution is exactly
	// C[cout×HW] = W[cout×cin] · X[cin×HW]; even the implicit unfold would
	// be an identity gather, so B is the input itself.
	if p.kh == 1 && p.kw == 1 && p.sh == 1 && p.sw == 1 && p.dh == 1 && p.dw == 1 &&
		p.padT == 0 && p.padL == 0 && p.padB == 0 && p.padR == 0 && p.groups == 1 {
		pw := packedConvWeights(ctx, n, w, 1, p.cout, p.cin)
		ctx.GEMM(gemm.Call{A: w, PackedA: pw, B: x, C: y,
			M: p.cout, N: cols, K: p.cin, Store: true,
			Batch: p.n, StrideB: p.cin * cols, StrideC: p.cout * cols,
			BiasRow: bias, Act: act, Alpha: p.alpha})
		return nil
	}

	perGroup := gemm.PackedASize(coutG, kdim)
	packedW := packedConvWeights(ctx, n, w, p.groups, coutG, kdim)

	for g := 0; g < p.groups; g++ {
		// One strided call folds the whole batch: the source resolves the
		// image index to its NCHW slab, C images start cout*cols apart,
		// and the group's rows sit coutG*cols into each image.
		ctx.convSrc.init(x, &p, g)
		wg := w[g*coutG*kdim : (g+1)*coutG*kdim]
		var pa []float32
		if packedW != nil {
			pa = packedW[g*perGroup : (g+1)*perGroup]
		}
		var bg []float32
		if bias != nil {
			bg = bias[g*coutG : (g+1)*coutG]
		}
		ctx.GEMM(gemm.Call{A: wg, PackedA: pa, BPack: &ctx.convSrc, C: y[g*coutG*cols:],
			M: coutG, N: cols, K: kdim, Store: true,
			Batch: p.n, StrideC: p.cout * cols,
			BiasRow: bg, Act: act, Alpha: p.alpha})
	}
	return nil
}

// runConvIm2colExplicit implements conv.im2col_explicit: classic GEMM
// convolution over a materialised im2col matrix, with separate bias and
// activation sweeps (spread across the worker pool). It is numerically
// the reference for the implicit path and the per-call-allocation
// behaviour the torch-sim backend models.
func runConvIm2colExplicit(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	p, err := resolveConvRT(n, in)
	if err != nil {
		return err
	}
	x := in[0].Data()
	w := in[1].Data()
	var bias []float32
	if p.hasBias {
		bias = in[2].Data()
	}
	y := out[0].Data()

	cinG := p.cin / p.groups
	coutG := p.cout / p.groups
	kdim := cinG * p.kh * p.kw
	cols := p.oh * p.ow

	// Pointwise fast path: the unfold would be a copy, so skip it even on
	// the explicit path (both paths share it; the comparison is about the
	// general unfold).
	if p.kh == 1 && p.kw == 1 && p.sh == 1 && p.sw == 1 && p.dh == 1 && p.dw == 1 &&
		p.padT == 0 && p.padL == 0 && p.padB == 0 && p.padR == 0 && p.groups == 1 {
		pw := packedConvWeights(ctx, n, w, 1, p.cout, p.cin)
		ctx.GEMM(gemm.Call{A: w, PackedA: pw, B: x, C: y,
			M: p.cout, N: cols, K: p.cin, Store: true,
			Batch: p.n, StrideB: p.cin * cols, StrideC: p.cout * cols})
		ctx.Sweep(y, bias, p.n*p.cout, cols, p.activation, p.alpha)
		return nil
	}

	// The unfold writes every element (padding included), so the scratch
	// needs no zero-fill.
	colBuf := ctx.ScratchUninit("conv.im2col/col", n, kdim*cols)

	perGroup := gemm.PackedASize(coutG, kdim)
	packedW := packedConvWeights(ctx, n, w, p.groups, coutG, kdim)

	for b := 0; b < p.n; b++ {
		for g := 0; g < p.groups; g++ {
			// The group's input channels are contiguous within one batch
			// image: offset (b*cin + g*cinG)*h*w.
			src := x[(b*p.cin+g*cinG)*p.h*p.w:]
			tensor.Im2ColInto(colBuf, src, 1, cinG, p.h, p.w,
				p.kh, p.kw, p.sh, p.sw, p.padT, p.padL, p.dh, p.dw, p.oh, p.ow)
			// Weight rows for this group are contiguous: [coutG, kdim].
			wg := w[g*coutG*kdim : (g+1)*coutG*kdim]
			dst := y[(b*p.cout+g*coutG)*cols : (b*p.cout+(g+1)*coutG)*cols]
			var pa []float32
			if packedW != nil {
				pa = packedW[g*perGroup : (g+1)*perGroup]
			}
			ctx.GEMM(gemm.Call{A: wg, PackedA: pa, B: colBuf, C: dst,
				M: coutG, N: cols, K: kdim, Store: true})
		}
	}
	ctx.Sweep(y, bias, p.n*p.cout, cols, p.activation, p.alpha)
	return nil
}

// addBiasNCHW adds bias[c] to every spatial element of channel c. It is
// the single-threaded sweep kept for the deliberately naive
// conv.group_im2col simulation; production paths fuse the bias into the
// GEMM epilogue or use Ctx.Sweep.
func addBiasNCHW(y, bias []float32, n, c, spatial int) {
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			bv := bias[ch]
			row := y[(b*c+ch)*spatial : (b*c+ch+1)*spatial]
			for i := range row {
				row[i] += bv
			}
		}
	}
}
