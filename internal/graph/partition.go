package graph

import (
	"fmt"
	"sort"

	"orpheus/internal/tensor"
)

// This file implements pipeline partitioning: splitting one graph into K
// stage subgraphs that execute on different processes, with named boundary
// tensors streamed between consecutive stages (the SEIFER/DEFER execution
// model). Cut points are chosen to minimise the total bytes transferred
// per inference, optionally subject to a compute-balance cap so no stage
// dominates the pipeline's steady-state throughput.
//
// A cut lives between two positions of the topological node order. The
// values crossing a cut — produced at or before it (or graph inputs) and
// still needed after it — become the upstream shard's outputs and the
// downstream shard's inputs, in one deterministic order, so the two sides
// agree on the activation-frame layout without further negotiation. Graph
// outputs produced before the final shard are threaded through every later
// shard as passthrough values (an input marked as an output), which the
// runtime resolves without copying.

// CutPoint describes one candidate pipeline cut: the position in the
// topological node order it follows, the values crossing it, and the
// fp32 payload bytes those values transfer per inference.
type CutPoint struct {
	// After is the index into the topologically sorted g.Nodes that the
	// cut follows: nodes [0..After] run upstream, (After..] downstream.
	After int
	// Node is the name of the last node before the cut (g.Nodes[After]).
	Node string
	// Values names the tensors crossing the cut, in boundary order
	// (producer topological position, then name — the frame layout both
	// sides of the wire derive independently).
	Values []string
	// Shapes holds the crossing values' shapes, parallel to Values.
	Shapes [][]int
	// Bytes is the total fp32 payload crossing the cut per inference at
	// the graph's built batch size (4 bytes per element; int8 wire
	// encoding transfers a quarter of this).
	Bytes int64
}

// PartitionOptions parameterises Partition.
type PartitionOptions struct {
	// Shards is the number of pipeline stages to split into (≥ 1).
	Shards int
	// NodeCost estimates one node's compute cost for the balance
	// constraint. Nil costs every node 1 (internal/passes supplies a
	// flop-based cost, which graph cannot depend on).
	NodeCost func(*Node) int64
	// MaxImbalance caps any shard's cost at MaxImbalance × (total/Shards).
	// ≤ 0 selects the default 1.5. Partition relaxes the cap progressively
	// when no split satisfies it, so the call fails only when the graph
	// has fewer cut positions than shards.
	MaxImbalance float64
}

// PartitionResult is a graph split into pipeline stages.
type PartitionResult struct {
	// Shards holds one finalized subgraph per stage, in pipeline order.
	// Shard s's outputs are exactly shard s+1's inputs (same names, same
	// order); the first shard declares the original graph inputs and the
	// last the original graph outputs.
	Shards []*Graph
	// Cuts describes the K-1 chosen boundaries, in pipeline order.
	Cuts []CutPoint
	// TransferBytes is the summed fp32 payload of all boundaries per
	// inference — the objective Partition minimised.
	TransferBytes int64
}

// cutAnalysis holds the per-position crossing sets of a topologically
// sorted graph, shared by CutPoints and Partition.
type cutAnalysis struct {
	nodes    []*Node
	prodIdx  map[*Value]int // -1 for graph inputs
	crossing [][]*Value     // crossing[b] = values crossing the cut after node b
	bytes    []int64        // bytes[b] = fp32 payload of crossing[b]
}

// analyzeCuts computes, for every position of the topological order, the
// set of values that would cross a cut there. Shapes must be inferred
// (call Finalize first).
func analyzeCuts(g *Graph) (*cutAnalysis, error) {
	if err := g.TopoSort(); err != nil {
		return nil, err
	}
	n := len(g.Nodes)
	if n == 0 {
		return nil, fmt.Errorf("graph %q: cannot cut an empty graph", g.Name)
	}
	a := &cutAnalysis{nodes: g.Nodes, prodIdx: make(map[*Value]int)}
	for _, in := range g.Inputs {
		a.prodIdx[in] = -1
	}
	for i, nd := range g.Nodes {
		for _, out := range nd.Outputs {
			a.prodIdx[out] = i
		}
	}
	// lastNeed[v] = last node index that reads v; graph outputs are needed
	// past every cut, so they cross from their producer to the final shard.
	lastNeed := make(map[*Value]int)
	for i, nd := range g.Nodes {
		for _, in := range nd.Inputs {
			if in.IsConst() {
				continue
			}
			lastNeed[in] = i
		}
	}
	for _, out := range g.Outputs {
		lastNeed[out] = n // sentinel: beyond the last cut
	}
	a.crossing = make([][]*Value, n-1)
	a.bytes = make([]int64, n-1)
	for b := 0; b < n-1; b++ {
		var cross []*Value
		for v, last := range lastNeed {
			p, known := a.prodIdx[v]
			if !known {
				continue // constants never cross: each shard carries its own
			}
			if p <= b && last > b {
				cross = append(cross, v)
			}
		}
		sort.Slice(cross, func(i, j int) bool {
			pi, pj := a.prodIdx[cross[i]], a.prodIdx[cross[j]]
			if pi != pj {
				return pi < pj
			}
			return cross[i].Name < cross[j].Name
		})
		var bytes int64
		for _, v := range cross {
			if v.Shape == nil {
				return nil, fmt.Errorf("graph %q: value %q has no inferred shape (run Finalize before partitioning)", g.Name, v.Name)
			}
			bytes += 4 * int64(tensor.Volume(v.Shape))
		}
		a.crossing[b] = cross
		a.bytes[b] = bytes
	}
	return a, nil
}

// cutPoint materialises the CutPoint describing the cut after position b.
func (a *cutAnalysis) cutPoint(b int) CutPoint {
	cp := CutPoint{After: b, Node: a.nodes[b].Name, Bytes: a.bytes[b]}
	for _, v := range a.crossing[b] {
		cp.Values = append(cp.Values, v.Name)
		cp.Shapes = append(cp.Shapes, append([]int(nil), v.Shape...))
	}
	return cp
}

// CutPoints enumerates every candidate pipeline cut of the graph in
// topological order, with the values and transfer bytes each would move
// per inference. orpheus-inspect -cuts ranks these for auditing; Partition
// picks from the same set.
func CutPoints(g *Graph) ([]CutPoint, error) {
	a, err := analyzeCuts(g)
	if err != nil {
		return nil, err
	}
	out := make([]CutPoint, 0, len(a.crossing))
	for b := range a.crossing {
		out = append(out, a.cutPoint(b))
	}
	return out, nil
}

// Partition splits g into opts.Shards pipeline stages, choosing the cuts
// that minimise total boundary transfer bytes per inference (DEFER's
// objective) subject to the compute-balance cap. The input graph is not
// modified; shard subgraphs share its constant tensors (immutable
// throughout Orpheus) but own their nodes and values.
func Partition(g *Graph, opts PartitionOptions) (*PartitionResult, error) {
	k := opts.Shards
	if k < 1 {
		return nil, fmt.Errorf("graph %q: cannot partition into %d shards", g.Name, k)
	}
	if k > len(g.Nodes) {
		return nil, fmt.Errorf("graph %q: %d shards exceed the graph's %d nodes", g.Name, k, len(g.Nodes))
	}
	a, err := analyzeCuts(g)
	if err != nil {
		return nil, err
	}
	cost := opts.NodeCost
	if cost == nil {
		cost = func(*Node) int64 { return 1 }
	}
	// Prefix compute costs for O(1) range sums in the DP.
	n := len(a.nodes)
	prefix := make([]int64, n+1)
	for i, nd := range a.nodes {
		c := cost(nd)
		if c < 0 {
			c = 0
		}
		prefix[i+1] = prefix[i] + c
	}
	imbalance := opts.MaxImbalance
	if imbalance <= 0 {
		imbalance = 1.5
	}
	var cuts []int
	for {
		cap := int64(imbalance * float64(prefix[n]) / float64(k))
		if cap < 1 {
			cap = 1
		}
		cuts = chooseCuts(a, prefix, k, cap)
		if cuts != nil || imbalance > 64 {
			break
		}
		// No split fits this cap (e.g. one node dominates the cost):
		// relax and retry rather than failing a feasible partition.
		imbalance *= 1.5
	}
	if cuts == nil {
		return nil, fmt.Errorf("graph %q: no feasible %d-way partition", g.Name, k)
	}
	res := &PartitionResult{}
	for _, b := range cuts {
		if len(a.crossing[b]) == 0 {
			return nil, fmt.Errorf("graph %q: cut after node %q crosses no values (disconnected graph?)", g.Name, a.nodes[b].Name)
		}
		res.Cuts = append(res.Cuts, a.cutPoint(b))
		res.TransferBytes += a.bytes[b]
	}
	lo := 0
	for s := 0; s < k; s++ {
		hi := n - 1
		if s < len(cuts) {
			hi = cuts[s]
		}
		var inVals, outVals []*Value
		if s == 0 {
			inVals = g.Inputs
		} else {
			inVals = a.crossing[cuts[s-1]]
		}
		if s == k-1 {
			outVals = g.Outputs
		} else {
			outVals = a.crossing[cuts[s]]
		}
		name := fmt.Sprintf("%s.shard%d-of-%d", g.Name, s+1, k)
		sg, err := buildShard(a.nodes[lo:hi+1], inVals, outVals, name, s == 0)
		if err != nil {
			return nil, fmt.Errorf("graph %q: shard %d/%d: %w", g.Name, s+1, k, err)
		}
		res.Shards = append(res.Shards, sg)
		lo = hi + 1
	}
	return res, nil
}

// chooseCuts is the min-transfer dynamic program: dp[s][i] = cheapest way
// to run nodes [0..i] as s shards whose per-shard cost stays under cap.
// It returns the K-1 chosen cut positions, or nil when no split fits.
func chooseCuts(a *cutAnalysis, prefix []int64, k int, cap int64) []int {
	n := len(a.nodes)
	if k == 1 {
		return []int{}
	}
	const inf = int64(1) << 62
	dp := make([][]int64, k+1)
	from := make([][]int, k+1)
	for s := 0; s <= k; s++ {
		dp[s] = make([]int64, n)
		from[s] = make([]int, n)
		for i := range dp[s] {
			dp[s][i] = inf
			from[s][i] = -2
		}
	}
	for i := 0; i < n; i++ {
		if prefix[i+1] <= cap {
			dp[1][i] = 0
			from[1][i] = -1
		}
	}
	for s := 2; s <= k; s++ {
		for i := s - 1; i < n; i++ {
			for j := s - 2; j < i; j++ {
				if dp[s-1][j] == inf || prefix[i+1]-prefix[j+1] > cap {
					continue
				}
				if c := dp[s-1][j] + a.bytes[j]; c < dp[s][i] {
					dp[s][i] = c
					from[s][i] = j
				}
			}
		}
	}
	if dp[k][n-1] == inf {
		return nil
	}
	cuts := make([]int, 0, k-1)
	for s, i := k, n-1; s > 1; s-- {
		j := from[s][i]
		cuts = append(cuts, j)
		i = j
	}
	// Reverse into pipeline order.
	for l, r := 0, len(cuts)-1; l < r; l, r = l+1, r-1 {
		cuts[l], cuts[r] = cuts[r], cuts[l]
	}
	return cuts
}

// buildShard assembles one stage subgraph over the given node range.
// Boundary inputs are declared in boundary order; constants are shared
// with the source graph; outputs not produced in the range must be among
// the inputs (passthrough values the runtime forwards without a copy).
func buildShard(nodes []*Node, inVals, outVals []*Value, name string, first bool) (*Graph, error) {
	sg := New(name)
	vmap := make(map[*Value]*Value)
	for _, v := range inVals {
		nv, err := sg.Input(v.Name, v.Shape)
		if err != nil {
			return nil, err
		}
		if first {
			// The entry shard reproduces the original input contract.
			nv.Batched = v.Batched
		}
		vmap[v] = nv
	}
	mapIn := func(v *Value) (*Value, error) {
		if nv := vmap[v]; nv != nil {
			return nv, nil
		}
		if v.IsConst() {
			nv, err := sg.Const(v.Name, v.Const)
			if err != nil {
				return nil, err
			}
			vmap[v] = nv
			return nv, nil
		}
		return nil, fmt.Errorf("value %q is read but neither produced in the shard nor a boundary input", v.Name)
	}
	for _, nd := range nodes {
		ins := make([]*Value, len(nd.Inputs))
		for i, v := range nd.Inputs {
			nv, err := mapIn(v)
			if err != nil {
				return nil, err
			}
			ins[i] = nv
		}
		outNames := make([]string, len(nd.Outputs))
		for i, v := range nd.Outputs {
			outNames[i] = v.Name
		}
		outs, err := sg.AddMulti(nd.Op, nd.Name, nd.Attrs.Clone(), ins, outNames)
		if err != nil {
			return nil, err
		}
		for i, v := range nd.Outputs {
			vmap[v] = outs[i]
		}
	}
	for _, v := range outVals {
		nv := vmap[v]
		if nv == nil {
			return nil, fmt.Errorf("boundary output %q is neither produced in the shard nor passed through", v.Name)
		}
		if err := sg.MarkOutput(nv); err != nil {
			return nil, err
		}
	}
	if err := sg.Finalize(); err != nil {
		return nil, err
	}
	return sg, nil
}
