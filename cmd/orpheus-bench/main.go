// orpheus-bench regenerates the paper's evaluation — Figure 2, Table I and
// the ablation experiments A1–A5 — plus the repo's own experiments:
// "batch" (batched throughput at n = 1, 4, 8) and "simd" (GEMM
// micro-kernel ablation on the same Call stream).
//
// Usage:
//
//	orpheus-bench                                  # every experiment, simulated A73
//	orpheus-bench -experiment fig2 -mode both      # fig2, simulated + measured
//	orpheus-bench -experiment fig2 -mode measure -reps 5 -models wrn-40-2,resnet-18
//	orpheus-bench -experiment simd -mode measure   # pure-Go vs SIMD kernels, this host
//	orpheus-bench -experiment shard                # pipeline-parallel sharding, loopback stages
//	orpheus-bench -shards host1:9101,host2:9102    # same, against running orpheus-shard processes
//	orpheus-bench -list                            # list experiment ids
//	orpheus-bench -csv results.csv -experiment fig2
//
// Modes: "sim" evaluates the Cortex-A73 (HiKey 970) cost model and is
// instant; "measure" times real single-thread inference on this machine;
// "both" reports the two side by side. See docs/CLI.md for worked
// examples of every tool.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"orpheus/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (default: run all); see -list")
		mode       = flag.String("mode", "sim", "sim | measure | both")
		reps       = flag.Int("reps", 3, "measured repetitions per point")
		warmup     = flag.Int("warmup", 1, "measured warm-up runs per point")
		workers    = flag.Int("workers", 1, "thread count for measured runs (paper uses 1)")
		models     = flag.String("models", "", "comma-separated model subset (default: all five)")
		csvPath    = flag.String("csv", "", "also write the report as CSV to this file")
		wireOnly   = flag.Bool("wire", false, "wire experiment: benchmark only the binary tensor format (skip the JSON baseline)")
		shards     = flag.String("shards", "", "shard experiment: comma-separated addresses of running orpheus-shard stages, in pipeline order (default: in-process loopback stages)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	// Ctrl-C aborts a measured sweep between plan steps instead of
	// killing the process mid-experiment.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	cfg := &harness.Config{
		Ctx:     ctx,
		Mode:    harness.Mode(*mode),
		Reps:    *reps,
		Warmup:  *warmup,
		Workers: *workers,
		Wire:    *wireOnly,
	}
	if *models != "" {
		cfg.Models = strings.Split(*models, ",")
	}
	if *shards != "" {
		cfg.Shards = strings.Split(*shards, ",")
		if *experiment == "" {
			*experiment = "shard"
		}
	}

	var ids []string
	if *experiment != "" {
		ids = []string{*experiment}
	} else {
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
	}

	var csvOut strings.Builder
	for _, id := range ids {
		e, err := harness.ByID(id)
		if err != nil {
			fatal(err)
		}
		rep, err := e.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("experiment %s: %w", id, err))
		}
		fmt.Println(rep.Format())
		csvOut.WriteString(rep.CSV())
		csvOut.WriteString("\n")
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csvOut.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote CSV to %s\n", *csvPath)
	}
}

func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "orpheus-bench: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "orpheus-bench:", err)
	os.Exit(1)
}
