// orpheus-serve hosts models behind an HTTP/JSON inference API — the
// deployment-side counterpart of the paper's Python bindings.
//
// Usage:
//
//	orpheus-serve -zoo wrn-40-2 -addr :8080
//	orpheus-serve -model mobilenet.onnx -backend tvm-sim
//	orpheus-serve -zoo mobilenet-v1 -max-batch 8 -flush-ms 2   # dynamic batching
//
//	curl localhost:8080/models
//	curl -X POST localhost:8080/predict/wrn-40-2 \
//	     -d '{"input": [ ...3072 floats... ], "topk": 5}'
//
// The wire contract — endpoints, status codes, wait_ms, batch_size and
// flush-deadline semantics — is documented in docs/SERVE.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"path/filepath"
	"strings"
	"time"

	"orpheus/internal/onnx"
	"orpheus/internal/serve"
	"orpheus/internal/zoo"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		zooNames  = flag.String("zoo", "", "comma-separated built-in models to host")
		modelPath = flag.String("model", "", "path to an .onnx model to host")
		backendN  = flag.String("backend", "orpheus", "execution backend")
		workers   = flag.Int("workers", 1, "kernel thread budget")
		maxBatch  = flag.Int("max-batch", 1, "dynamic batching width: coalesce up to N concurrent /predict requests into one batched run (1 disables)")
		flushMs   = flag.Float64("flush-ms", 2, "batching flush deadline in milliseconds (how long a lone request waits for peers; <= 0 selects the 2ms default)")
	)
	flag.Parse()

	s := serve.New(
		serve.WithMaxBatch(*maxBatch),
		serve.WithFlushDeadline(time.Duration(*flushMs*float64(time.Millisecond))),
	)
	hosted := 0
	if *zooNames != "" {
		for _, name := range strings.Split(*zooNames, ",") {
			g, err := zoo.Build(name, 1)
			if err != nil {
				log.Fatal(err)
			}
			if err := s.AddModel(name, g, *backendN, *workers); err != nil {
				log.Fatal(err)
			}
			log.Printf("hosting %s (%s backend)", name, *backendN)
			hosted++
		}
	}
	if *modelPath != "" {
		g, err := onnx.ImportFile(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(*modelPath), ".onnx")
		if err := s.AddModel(name, g, *backendN, *workers); err != nil {
			log.Fatal(err)
		}
		log.Printf("hosting %s from %s (%s backend)", name, *modelPath, *backendN)
		hosted++
	}
	if hosted == 0 {
		log.Fatal(fmt.Errorf("nothing to host: pass -zoo and/or -model (zoo models: %v)", zoo.Names()))
	}
	log.Printf("listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, s.Handler()))
}
