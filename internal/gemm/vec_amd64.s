//go:build !noasm

#include "textflag.h"

// func fmaRowAVX2(dst, a, b *float32, n int64)
//
// dst[i] += a[i]*b[i] over n elements, 8 per iteration; n is a positive
// multiple of 8 (the Go wrapper handles the scalar tail).
TEXT ·fmaRowAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	SHRQ $3, CX

fmaloop:
	VMOVUPS (SI), Y1
	VMOVUPS (DX), Y2
	VMOVUPS (DI), Y0
	VFMADD231PS Y2, Y1, Y0
	VMOVUPS Y0, (DI)
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, DI
	DECQ CX
	JNZ  fmaloop
	VZEROUPPER
	RET
