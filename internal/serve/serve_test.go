package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// tinyModel: conv -> relu -> gap -> flatten -> dense -> softmax on 8x8.
func tinyModel(t testing.TB) *graph.Graph {
	t.Helper()
	r := tensor.NewRNG(61)
	g := graph.New("tiny")
	x, _ := g.Input("input", []int{1, 3, 8, 8})
	w, _ := g.Const("w", tensor.HeNormal(r, 8, 3, 3, 3))
	c, _ := g.Add("Conv", "conv", graph.Attrs{"pads": []int{1, 1, 1, 1}}, x, w)
	rl, _ := g.Add("Relu", "relu", nil, c)
	gap, _ := g.Add("GlobalAveragePool", "gap", nil, rl)
	fl, _ := g.Add("Flatten", "flat", graph.Attrs{"axis": 1}, gap)
	wf, _ := g.Const("wf", tensor.HeNormal(r, 4, 8))
	fc, _ := g.Add("Dense", "fc", nil, fl, wf)
	sm, _ := g.Add("Softmax", "prob", nil, fc)
	_ = g.MarkOutput(sm)
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New()
	if err := s.AddModel("tiny", tinyModel(t), "orpheus", 1); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

func TestModelsListing(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0]["name"] != "tiny" || infos[0]["backend"] != "orpheus" {
		t.Fatalf("models = %v", infos)
	}
	if infos[0]["param_bytes"].(float64) <= 0 {
		t.Fatal("param_bytes missing")
	}
}

func TestPredict(t *testing.T) {
	_, ts := newTestServer(t)
	input := make([]float32, 3*8*8)
	for i := range input {
		input[i] = float32(i%7) * 0.1
	}
	resp := postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": input, "topk": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d", resp.StatusCode)
	}
	var out struct {
		Output    []float32 `json:"output"`
		Shape     []int     `json:"shape"`
		TopK      []int     `json:"topk"`
		LatencyMs float64   `json:"latency_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Output) != 4 || len(out.TopK) != 2 {
		t.Fatalf("response: %+v", out)
	}
	var sum float32
	for _, v := range out.Output {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("softmax sum = %v", sum)
	}
	if out.LatencyMs <= 0 {
		t.Fatal("latency missing")
	}
}

func TestPredictValidation(t *testing.T) {
	_, ts := newTestServer(t)
	// Wrong input length → 400.
	resp := postJSON(t, ts.URL+"/predict/tiny", map[string]any{"input": []float32{1, 2, 3}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short input = %d, want 400", resp.StatusCode)
	}
	var e map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&e)
	if e["error"] == "" {
		t.Fatal("error body missing")
	}
	// Unknown model → 404.
	resp = postJSON(t, ts.URL+"/predict/nope", map[string]any{"input": []float32{}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model = %d, want 404", resp.StatusCode)
	}
	// Invalid JSON → 400.
	r2, err := http.Post(ts.URL+"/predict/tiny", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", r2.StatusCode)
	}
}

func TestProfileEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	input := make([]float32, 3*8*8)
	resp := postJSON(t, ts.URL+"/profile/tiny", map[string]any{"input": input})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile = %d", resp.StatusCode)
	}
	var rows []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	// The orpheus backend fuses relu into the conv: conv+relu, gap,
	// flatten, dense, softmax.
	if len(rows) != 5 {
		t.Fatalf("profile rows = %d, want 5", len(rows))
	}
	if rows[0]["kernel"] == "" {
		t.Fatal("kernel name missing in profile")
	}
}

func TestConcurrentPredicts(t *testing.T) {
	// Sessions are serialised per entry; concurrent requests must all
	// succeed and produce identical outputs for identical inputs.
	_, ts := newTestServer(t)
	input := make([]float32, 3*8*8)
	for i := range input {
		input[i] = 0.01 * float32(i%13)
	}
	var wg sync.WaitGroup
	outs := make([][]float32, 8)
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(map[string]any{"input": input})
			resp, err := http.Post(ts.URL+"/predict/tiny", "application/json", bytes.NewReader(b))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var out struct {
				Output []float32 `json:"output"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs[i] = err
				return
			}
			outs[i] = out.Output
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		for j := range outs[i] {
			if outs[i][j] != outs[0][j] {
				t.Fatalf("request %d diverged", i)
			}
		}
	}
}

func TestAddModelErrors(t *testing.T) {
	s := New()
	g := tinyModel(t)
	if err := s.AddModel("m", g, "no-such-backend", 1); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := s.AddModel("m", g, "orpheus", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddModel("m", g, "orpheus", 1); err == nil {
		t.Fatal("duplicate model name accepted")
	}
	if err := s.AddModel("m2", g, "tflite-sim", 1); err == nil {
		t.Fatal("tflite-sim single-thread should fail compile")
	}
	_ = fmt.Sprint() // keep fmt for future expansion
}
