package gemm

import (
	"fmt"
	"testing"

	"orpheus/internal/tensor"
)

// Differential tests for the int8 tier. The SIMD kernels must match the
// pure-Go int8 kernel *bit-exactly*: all kernels compute the same int32
// accumulators (int32 addition is associative and the value contract rules
// out VPMADDUBSW saturation), and the requantize epilogue is shared Go
// code, so the fp32 outputs must be identical floats. The pure-Go kernel
// is in turn pinned to a naive int32 reference computed straight from the
// quantized operands.

// withKernel8 runs fn with the named int8 kernel active, restoring the
// previous selection afterwards.
func withKernel8(t testing.TB, name string, fn func()) {
	t.Helper()
	prev := Kernel8Name()
	if err := SetKernel8(name); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetKernel8(prev); err != nil {
			t.Fatal(err)
		}
	}()
	fn()
}

// simd8KernelNames returns the selectable int8 kernels other than the
// pure-Go reference, skipping the test when none exist.
func simd8KernelNames(t testing.TB) []string {
	var names []string
	for _, n := range Kernel8Names() {
		if n != go8Kernel.name {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		t.Skip("no int8 SIMD kernels selectable on this CPU/build")
	}
	return names
}

// quantU8Test quantizes v with scale s and zero point z, clamping to
// [0, 255] — the test's activation quantizer, mirroring the ops-layer one.
func quantU8Test(v, s float32, z int32) byte {
	q := int32(v/s + float32(z) + 0.5)
	if q < 0 {
		q = 0
	} else if q > 255 {
		q = 255
	}
	return byte(q)
}

// quantParamsTest derives an asymmetric u8 scale/zero-point from a value
// range, always covering zero so padding quantizes exactly.
func quantParamsTest(lo, hi float32) (float32, int32) {
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi == lo {
		return 1, 0
	}
	s := (hi - lo) / 255
	z := int32(-lo/s + 0.5)
	if z < 0 {
		z = 0
	} else if z > 255 {
		z = 255
	}
	return s, z
}

// testSrc8 is a PackSrc8 over a materialised fp32 B (images × k×n
// row-major), quantizing per image or per column with precomputed params.
type testSrc8 struct {
	b        []float32
	k, n     int
	stride   int // elements between images
	colQuant bool
	scales   []float32
	zeros    []int32
}

func newTestSrc8(b []float32, k, n, images, stride int, colQuant bool) *testSrc8 {
	s := &testSrc8{b: b, k: k, n: n, stride: stride, colQuant: colQuant}
	if colQuant {
		s.scales = make([]float32, n)
		s.zeros = make([]int32, n)
		for j := 0; j < n; j++ {
			lo, hi := float32(0), float32(0)
			for p := 0; p < k; p++ {
				v := b[p*n+j]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			s.scales[j], s.zeros[j] = quantParamsTest(lo, hi)
		}
		return s
	}
	s.scales = make([]float32, images)
	s.zeros = make([]int32, images)
	for img := 0; img < images; img++ {
		lo, hi := float32(0), float32(0)
		for i := 0; i < k*n; i++ {
			v := b[img*stride+i]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		s.scales[img], s.zeros[img] = quantParamsTest(lo, hi)
	}
	return s
}

// at returns the quantized byte for element (p, j) of image img.
func (s *testSrc8) at(img, p, j int) byte {
	sc, z := s.scales[0], s.zeros[0]
	if s.colQuant {
		sc, z = s.scales[j], s.zeros[j]
	} else {
		sc, z = s.scales[img], s.zeros[img]
	}
	return quantU8Test(s.b[img*s.stride+p*s.n+j], sc, z)
}

// PackPanel8 implements PackSrc8 in the documented k-quad layout.
func (s *testSrc8) PackPanel8(dst []byte, img, pp, jj, kc, nc, nr int) {
	kcq4 := (kc + 3) / 4 * 4
	need := (nc + nr - 1) / nr * nr * kcq4
	for i := range dst[:need] {
		dst[i] = 0
	}
	for j := 0; j < nc; j++ {
		strip, jl := j/nr, j%nr
		base := strip * nr * kcq4
		for p := 0; p < kc; p++ {
			dst[base+(p/4)*nr*4+jl*4+p%4] = s.at(img, pp+p, jj+j)
		}
	}
}

// int8Case is one CallInt8 shape in the differential battery.
type int8Case struct {
	m, n, k  int
	batch    int
	padC     int
	transC   bool // implies colQuant, unbatched
	colQuant bool
	act      Activation
	bias     bool
}

var int8Cases = []int8Case{
	{m: 1, n: 1, k: 1},
	{m: 3, n: 5, k: 7, bias: true},
	{m: 4, n: 8, k: 4, act: ActReLU},
	{m: 8, n: 16, k: 8}, // one vnni tile
	{m: 7, n: 9, k: 5, act: ActReLU6, bias: true},
	{m: 9, n: 17, k: 3},   // one past tile boundaries
	{m: 16, n: 24, k: 32}, // full tiles, no tails
	{m: 5, n: 8, k: 0, bias: true, act: ActReLU},
	{m: 63, n: 65, k: 127, act: ActLeakyReLU, bias: true},
	{m: 33, n: 7, k: 129},
	{m: 130, n: 258, k: 300, bias: true, act: ActReLU}, // crosses every macro block
	{m: 200, n: 12, k: 500},
	{m: 5, n: 6, k: 9, batch: 3, bias: true},
	{m: 8, n: 16, k: 18, batch: 4, padC: 5, act: ActReLU},
	{m: 130, n: 36, k: 40, batch: 2, padC: 1},
	{m: 11, n: 13, k: 21, transC: true, colQuant: true, bias: true, act: ActReLU},
	{m: 64, n: 9, k: 130, transC: true, colQuant: true},
	{m: 17, n: 19, k: 23, colQuant: true, act: ActLeakyReLU},
}

func (ic int8Case) String() string {
	s := fmt.Sprintf("m%d_n%d_k%d", ic.m, ic.n, ic.k)
	if ic.batch > 1 {
		s += fmt.Sprintf("_b%d", ic.batch)
	}
	if ic.transC {
		s += "_tc"
	} else if ic.colQuant {
		s += "_cq"
	}
	return s
}

// int8Buffers builds the weights (within the [-63, 63] contract), the fp32
// activations and the per-row metadata for one case.
func int8Buffers(ic int8Case, seed uint64) (a []int8, scaleA []float32, rowSum []int32, b []float32, bias []float32) {
	r := tensor.NewRNG(seed)
	a = make([]int8, ic.m*ic.k)
	for i := range a {
		a[i] = int8(r.Intn(127)) - 63
	}
	scaleA = make([]float32, ic.m)
	for i := range scaleA {
		scaleA[i] = r.Uniform(0.001, 0.05)
	}
	rowSum = make([]int32, ic.m)
	RowSumsInt8(rowSum, a, ic.m, ic.k)
	images := ic.batch
	if images < 2 {
		images = 1
	}
	b = make([]float32, images*ic.k*ic.n)
	for i := range b {
		b[i] = r.Uniform(-2, 3)
	}
	bias = nil
	if ic.bias {
		bias = make([]float32, ic.m)
		for i := range bias {
			bias[i] = r.Uniform(-1, 1)
		}
	}
	return
}

// buildCall assembles the CallInt8 for one case over shared buffers and a
// fresh C.
func buildCall(ic int8Case, a []int8, scaleA []float32, rowSum []int32, src *testSrc8, bias []float32) CallInt8 {
	images := 1
	if ic.batch > 1 {
		images = ic.batch
	}
	cLen := ic.m * ic.n
	c := CallInt8{
		A: a, B: src, M: ic.m, N: ic.n, K: ic.k,
		ScaleA: scaleA, RowSum: rowSum,
		BScale: src.scales, BZero: src.zeros,
		TransC: ic.transC, ColQuant: ic.colQuant || ic.transC,
		BiasRow: bias, Act: ic.act, Alpha: 0.1,
	}
	if ic.batch > 1 {
		c.Batch = ic.batch
		c.StrideC = ic.m*ic.n + ic.padC
		cLen = (images-1)*c.StrideC + ic.m*ic.n
	}
	c.C = make([]float32, cLen)
	return c
}

// refInt8 computes the expected output from first principles: a naive
// int32 accumulation over the quantized operands, then the shared
// requantize epilogue (storeTile over the full matrix).
func refInt8(c *CallInt8, ic int8Case, a []int8, src *testSrc8) []float32 {
	images := c.images()
	want := make([]float32, len(c.C))
	ref := *c
	ref.C = want
	acc := make([]int32, ic.m*ic.n)
	for img := 0; img < images; img++ {
		for r := 0; r < ic.m; r++ {
			for j := 0; j < ic.n; j++ {
				var s int32
				for p := 0; p < ic.k; p++ {
					s += int32(a[r*ic.k+p]) * int32(src.at(img, p, j))
				}
				acc[r*ic.n+j] = s
			}
		}
		ref.storeTile(acc, ic.n, img, 0, 0, ic.m, ic.n)
	}
	return want
}

// int8Variant selects execution mode and prepacking.
type int8Variant struct {
	name    string
	packA   bool
	workers int
}

var int8Variants = []int8Variant{
	{name: "raw"},
	{name: "packedA", packA: true},
	{name: "pool3", workers: 3},
	{name: "pool3-packedA", packA: true, workers: 3},
}

// runInt8Call executes the call under the active kernel, prepacking under
// that same kernel.
func runInt8Call(c CallInt8, ic int8Case, a []int8, v int8Variant) []float32 {
	if v.packA && ic.k > 0 {
		c.PackedA = PrepackAInt8(a, ic.m, ic.k)
		c.A = nil
	}
	var ctx Context
	if v.workers > 0 {
		Shared().RunInt8(&ctx, c, v.workers)
	} else {
		ctx.RunInt8(c)
	}
	return c.C
}

func TestInt8KernelDifferential(t *testing.T) {
	kernels := append([]string{}, Kernel8Names()...)
	for _, ic := range int8Cases {
		a, scaleA, rowSum, b, bias := int8Buffers(ic, uint64(ic.m*1009+ic.n*31+ic.k))
		images := 1
		if ic.batch > 1 {
			images = ic.batch
		}
		src := newTestSrc8(b, ic.k, ic.n, images, ic.k*ic.n, ic.colQuant || ic.transC)
		call := buildCall(ic, a, scaleA, rowSum, src, bias)
		want := refInt8(&call, ic, a, src)
		for _, kn := range kernels {
			for _, v := range int8Variants {
				t.Run(fmt.Sprintf("%s/%s/%s", kn, ic, v.name), func(t *testing.T) {
					var got []float32
					withKernel8(t, kn, func() {
						got = runInt8Call(call, ic, a, v)
					})
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("kernel %s diverges from int32 reference at C[%d]: got %v want %v",
								kn, i, got[i], want[i])
						}
					}
				})
			}
		}
	}
}

// TestInt8KernelSaturationEdge drives the exact worst case of the value
// contract — every weight at ±63, every activation byte at 255 — so any
// hidden VPMADDUBSW int16 saturation would surface as a mismatch against
// the exact int32 reference.
func TestInt8KernelSaturationEdge(t *testing.T) {
	const m, n, k = 16, 32, 259 // odd k: exercises the quad tail
	a := make([]int8, m*k)
	for i := range a {
		if i%2 == 0 {
			a[i] = 63
		} else {
			a[i] = -63
		}
	}
	// Activations far outside the quant range clamp to 255 (lo=0 keeps the
	// zero point at 0, so every positive value saturates the u8 range).
	b := make([]float32, k*n)
	for i := range b {
		b[i] = 1e6
	}
	scaleA := make([]float32, m)
	for i := range scaleA {
		scaleA[i] = 0.01
	}
	rowSum := make([]int32, m)
	RowSumsInt8(rowSum, a, m, k)
	src := newTestSrc8(b, k, n, 1, k*n, false)
	ic := int8Case{m: m, n: n, k: k}
	call := buildCall(ic, a, scaleA, rowSum, src, nil)
	want := refInt8(&call, ic, a, src)
	for _, kn := range Kernel8Names() {
		t.Run(kn, func(t *testing.T) {
			var got []float32
			withKernel8(t, kn, func() {
				got = runInt8Call(call, ic, a, int8Variant{name: "raw"})
			})
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("kernel %s saturation edge diverges at C[%d]: got %v want %v", kn, i, got[i], want[i])
				}
			}
		})
	}
}

// TestKernel8Selection pins the int8 dispatch API, mirroring
// TestKernelSelection.
func TestKernel8Selection(t *testing.T) {
	prev := Kernel8Name()
	defer func() {
		if err := SetKernel8(prev); err != nil {
			t.Fatal(err)
		}
	}()
	names := Kernel8Names()
	if len(names) == 0 || names[0] != "go" {
		t.Fatalf("Kernel8Names() = %v, want \"go\" first", names)
	}
	for _, n := range names {
		if err := SetKernel8(n); err != nil {
			t.Fatalf("SetKernel8(%q): %v", n, err)
		}
		if got := Kernel8Name(); got != n {
			t.Fatalf("Kernel8Name() = %q after SetKernel8(%q)", got, n)
		}
	}
	if err := SetKernel8("no-such-kernel"); err == nil {
		t.Fatal("SetKernel8 with unknown name should error")
	}
	if got := Kernel8Name(); got != names[len(names)-1] {
		t.Fatalf("failed SetKernel8 changed selection to %q", got)
	}
}

// FuzzInt8KernelDifferential fuzzes shapes, seeds and modes through every
// int8 SIMD kernel against the naive int32 reference, bit-exact.
func FuzzInt8KernelDifferential(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), uint64(7), uint8(0), uint8(0))
	f.Add(uint8(8), uint8(16), uint8(8), uint64(1), uint8(0), uint8(1))
	f.Add(uint8(7), uint8(9), uint8(13), uint64(3), uint8(2), uint8(2))
	f.Add(uint8(130), uint8(66), uint8(40), uint64(9), uint8(3), uint8(3))
	f.Add(uint8(4), uint8(16), uint8(0), uint64(2), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, m, n, k uint8, seed uint64, batch, mode uint8) {
		ic := int8Case{
			m: int(m%150) + 1, n: int(n%150) + 1, k: int(k % 200),
			batch: int(batch % 4),
			act:   Activation(mode % 4),
			bias:  mode%2 == 0,
		}
		if mode%3 == 0 && ic.batch <= 1 {
			ic.transC, ic.colQuant = true, true
		}
		a, scaleA, rowSum, b, bias := int8Buffers(ic, seed)
		images := 1
		if ic.batch > 1 {
			images = ic.batch
		}
		src := newTestSrc8(b, ic.k, ic.n, images, ic.k*ic.n, ic.colQuant || ic.transC)
		call := buildCall(ic, a, scaleA, rowSum, src, bias)
		want := refInt8(&call, ic, a, src)
		for _, kn := range Kernel8Names() {
			for _, v := range int8Variants {
				var got []float32
				withKernel8(t, kn, func() {
					got = runInt8Call(call, ic, a, v)
				})
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("kernel %s variant %s %v diverges at C[%d]: got %v want %v",
							kn, v.name, ic, i, got[i], want[i])
					}
				}
			}
		}
	})
}
