package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"orpheus/internal/graph"
	"orpheus/internal/wire"
)

// cheapWireModel is a nearly-free model with a wrn-40-2-sized input
// (1×3×32×32 = 3072 floats): GAP → Flatten → Softmax. With the kernels
// this cheap, an end-to-end benchmark times the serving plane itself —
// body transport, decode, staging, encode — which is exactly the delta
// the binary wire format exists to shrink.
func cheapWireModel(tb testing.TB) *graph.Graph {
	tb.Helper()
	g := graph.New("wirebench")
	x, _ := g.Input("input", []int{1, 3, 32, 32})
	gap, _ := g.Add("GlobalAveragePool", "gap", nil, x)
	fl, _ := g.Add("Flatten", "flat", graph.Attrs{"axis": 1}, gap)
	sm, _ := g.Add("Softmax", "prob", nil, fl)
	_ = g.MarkOutput(sm)
	if err := g.Finalize(); err != nil {
		tb.Fatal(err)
	}
	return g
}

// BenchmarkWirePredict measures end-to-end /predict latency — client
// encode, HTTP round trip, server decode/execute/encode, client decode —
// for the JSON and binary tensor body formats over one live TCP
// connection. CI snapshots the pair into BENCH_pr8.json; the binary
// format's reason to exist is this ratio.
func BenchmarkWirePredict(b *testing.B) {
	s := New()
	if err := s.AddModel("wire", cheapWireModel(b), "orpheus", 1); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	shape := []int{1, 3, 32, 32}
	input := make([]float32, 3*32*32)
	for i := range input {
		input[i] = float32(i%255) / 255
	}

	b.Run("json", func(b *testing.B) {
		url := ts.URL + "/predict/wire"
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			body, err := json.Marshal(predictRequest{Input: input})
			if err != nil {
				b.Fatal(err)
			}
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var out predictResponse
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK || len(out.Output) != 3 {
				b.Fatalf("json predict: status %d, err %v, %d outputs", resp.StatusCode, err, len(out.Output))
			}
		}
	})

	b.Run("binary", func(b *testing.B) {
		url := ts.URL + "/models/wire/predict"
		buf := make([]byte, 0, wire.EncodedSize(shape))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			msg := wire.AppendTensor(buf[:0], input, shape)
			req, err := http.NewRequest("POST", url, bytes.NewReader(msg))
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Content-Type", ContentTypeTensor)
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				b.Fatalf("binary predict: status %d, err %v", resp.StatusCode, err)
			}
			out, err := wire.DecodeBytes(raw, 0)
			if err != nil || out.Size() != 3 {
				b.Fatalf("binary response: %v (%d values)", err, out.Size())
			}
		}
	})
}
