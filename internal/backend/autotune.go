package backend

import (
	"fmt"
	"sort"
	"time"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
	"orpheus/internal/runtime"
	"orpheus/internal/tensor"
)

// AutoTunePolicy selects kernels empirically: for each distinct
// (op, attributes, input-shapes) signature it times every supporting
// kernel on synthetic data and caches the fastest. This is the
// profile-guided flavour of the paper's "multiple implementations selected
// at runtime" and the subject of ablation A5.
type AutoTunePolicy struct {
	// Repeats per kernel measurement (after one warm-up); default 3.
	Repeats int
	// cache maps signature → kernel name.
	cache map[string]string
	// Trace receives one line per tuning decision when non-nil.
	Trace func(sig, winner string, times map[string]time.Duration)
}

// NewAutoTunePolicy returns an empty-cache tuner.
func NewAutoTunePolicy() *AutoTunePolicy {
	return &AutoTunePolicy{cache: make(map[string]string)}
}

// Name implements runtime.Policy.
func (p *AutoTunePolicy) Name() string { return "autotune" }

// Select implements runtime.Policy.
func (p *AutoTunePolicy) Select(n *graph.Node) (ops.Kernel, error) {
	sig := nodeSignature(n)
	if name, ok := p.cache[sig]; ok {
		return ops.ByName(name), nil
	}
	winner, times, err := p.tune(n)
	if err != nil {
		return nil, err
	}
	p.cache[sig] = winner.Name()
	if p.Trace != nil {
		p.Trace(sig, winner.Name(), times)
	}
	return winner, nil
}

// tune benchmarks every supporting kernel on synthetic tensors shaped like
// the node's inputs.
func (p *AutoTunePolicy) tune(n *graph.Node) (ops.Kernel, map[string]time.Duration, error) {
	candidates := supportingKernels(n)
	if len(candidates) == 0 {
		return nil, nil, fmt.Errorf("backend: no kernel supports node %q (%s)", n.Name, n.Op)
	}
	if len(candidates) == 1 {
		return candidates[0], nil, nil
	}
	reps := p.Repeats
	if reps <= 0 {
		reps = 3
	}
	in := make([]*tensor.Tensor, len(n.Inputs))
	r := tensor.NewRNG(tensor.SeedFromString(nodeSignature(n)))
	for i, v := range n.Inputs {
		if v.IsConst() {
			in[i] = v.Const
		} else {
			in[i] = tensor.Rand(r, -1, 1, v.Shape...)
		}
	}
	out := make([]*tensor.Tensor, len(n.Outputs))
	for i, v := range n.Outputs {
		out[i] = tensor.New(v.Shape...)
	}
	times := make(map[string]time.Duration, len(candidates))
	var best ops.Kernel
	var bestTime time.Duration
	for _, k := range candidates {
		ctx := ops.NewCtx(1)
		if err := k.Run(ctx, n, in, out); err != nil { // warm-up + correctness gate
			continue
		}
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			if err := k.Run(ctx, n, in, out); err != nil {
				break
			}
		}
		elapsed := time.Since(start) / time.Duration(reps)
		times[k.Name()] = elapsed
		if best == nil || elapsed < bestTime {
			best, bestTime = k, elapsed
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("backend: every candidate kernel failed for node %q", n.Name)
	}
	return best, times, nil
}

// CacheSize returns the number of tuned signatures so far.
func (p *AutoTunePolicy) CacheSize() int { return len(p.cache) }

// supportingKernels lists the registered kernels able to run n, in stable
// name order.
func supportingKernels(n *graph.Node) []ops.Kernel {
	var out []ops.Kernel
	for _, k := range ops.ForOp(n.Op) {
		if k.Supports(n) {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// nodeSignature builds the tuning cache key: op, attributes and input
// shapes (names excluded so identical layers share one entry).
func nodeSignature(n *graph.Node) string {
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sig := n.Op
	for _, k := range keys {
		sig += fmt.Sprintf("|%s=%v", k, n.Attrs[k])
	}
	for _, in := range n.Inputs {
		sig += "|" + tensor.ShapeString(in.Shape)
	}
	return sig
}

// interface check
var _ runtime.Policy = (*AutoTunePolicy)(nil)
var _ runtime.Policy = (*PreferencePolicy)(nil)
var _ runtime.Policy = (*HeuristicPolicy)(nil)
