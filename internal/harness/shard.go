package harness

import (
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"orpheus/internal/backend"
	"orpheus/internal/runtime"
	"orpheus/internal/shard"
	"orpheus/internal/tensor"
	"orpheus/internal/zoo"
)

// E6 "shard": pipeline-parallel sharded inference. One zoo model is
// split at its min-transfer cut points and run as a chain of stage
// servers; the experiment reports, per topology, the sequential (depth
// 1) latency, the pipelined (depth >= nstages) throughput, and the
// worst output divergence against the single-process baseline — which
// must be exactly zero for fp32 boundaries. Topologies run in-process
// on loopback by default; -shards host1,host2,... points the driver at
// externally started orpheus-shard processes instead, turning the same
// experiment into the multi-machine harness.
func init() {
	register(&Experiment{ID: "shard", Title: "E6: pipeline-parallel sharded inference — latency, overlap, equality", Run: runShard})
}

// Shard-experiment sizing: enough requests to reach the pipeline's
// steady state (the first nstages requests only fill it), few enough to
// keep the sweep quick on one core.
const (
	shardWarmup   = 2
	shardSeqReqs  = 8
	shardPipeReqs = 16
)

// shardModel picks the experiment's model: the explicit single -models
// restriction if there is one, else mobilenet-v1 (cheap enough for a
// loopback sweep, deep enough to cut three ways).
func shardModel(cfg *Config) string {
	if len(cfg.Models) == 1 {
		return cfg.Models[0]
	}
	return "mobilenet-v1"
}

func runShard(cfg *Config) (*Report, error) {
	cfg.fill()
	model := shardModel(cfg)
	rep := &Report{ID: "shard", Title: "E6: pipeline-parallel sharded inference, " + model}
	rep.Header = []string{"topology", "seq median ms", "seq inf/s", "pipelined inf/s", "overlap", "max |delta|"}

	g, err := zoo.Build(model, 1)
	if err != nil {
		return nil, err
	}
	in := g.Inputs[0]
	vol := tensor.Volume(in.Shape)
	input := make([]float32, vol)
	for i := range input {
		input[i] = float32((i*7+13)%23)*0.1 - 1.1
	}

	// Single-process baseline: the same graph through one plan, giving
	// both the reference output for equality and the un-sharded timing.
	be, err := backend.ByName("orpheus")
	if err != nil {
		return nil, err
	}
	plan, err := be.Prepare(g, cfg.Workers)
	if err != nil {
		return nil, err
	}
	pool := runtime.NewSessionPool(plan)
	inT := tensor.FromSlice(append([]float32(nil), input...), in.Shape...)
	var ref []float32
	singleRun := func() error {
		outs, err := pool.Run(cfg.Ctx, map[string]*tensor.Tensor{in.Name: inT})
		if err != nil {
			return err
		}
		ref = outs[g.Outputs[0].Name].Data()
		return nil
	}
	seqMs, seqRate, err := timeRequests(shardSeqReqs, 1, func() error { return singleRun() })
	if err != nil {
		return nil, err
	}
	rep.AddRow("single-process", fmt.Sprintf("%.2f", seqMs), fmt.Sprintf("%.1f", seqRate), "-", "-", "0")

	if len(cfg.Shards) > 0 {
		if err := shardTopology(cfg, rep, model, cfg.Shards, input, ref, nil); err != nil {
			return nil, err
		}
		rep.AddNote("external stages: %d orpheus-shard process(es); equality is against this host's single-process run", len(cfg.Shards))
		return rep, nil
	}

	for _, stages := range []int{2, 3} {
		addrs, closeAll, err := startLocalStages(cfg, model, stages)
		if err != nil {
			return nil, err
		}
		err = shardTopology(cfg, rep, model, addrs, input, ref, closeAll)
		if err != nil {
			return nil, err
		}
	}
	rep.AddNote("sequential = depth 1 (no overlap); pipelined = depth 2n with 2n concurrent submitters; fp32 boundaries must divide the model with max |delta| = 0")
	return rep, nil
}

// startLocalStages spins an in-process loopback chain of n stage
// servers and returns their addresses plus a teardown.
func startLocalStages(cfg *Config, model string, n int) ([]string, func(), error) {
	g, err := zoo.Build(model, 1)
	if err != nil {
		return nil, nil, err
	}
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		if lns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			return nil, nil, err
		}
		addrs[i] = lns[i].Addr().String()
	}
	servers := make([]*shard.Server, n)
	for i := 0; i < n; i++ {
		next := ""
		if i < n-1 {
			next = addrs[i+1]
		}
		servers[i], err = shard.New(shard.Config{
			Model: model, Graph: g, Index: i, Count: n,
			Workers: cfg.Workers, Next: next,
		})
		if err != nil {
			return nil, nil, err
		}
		go servers[i].Serve(lns[i]) //nolint:errcheck // exits on Close
	}
	return addrs, func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}, nil
}

// shardTopology benchmarks one pipeline (local or external) and appends
// its report row: sequential latency, pipelined throughput, overlap
// ratio and output divergence from the single-process reference.
func shardTopology(cfg *Config, rep *Report, model string, addrs []string, input, ref []float32, closeAll func()) error {
	if closeAll != nil {
		defer closeAll()
	}
	n := len(addrs)
	p, err := shard.Dial(cfg.Ctx, shard.PipelineConfig{Model: model, Addrs: addrs, Depth: 2 * n})
	if err != nil {
		return err
	}
	defer p.Close()

	var out []float32
	seqMs, seqRate, err := timeRequests(shardSeqReqs, 1, func() error {
		out, err = p.Predict(cfg.Ctx, input)
		return err
	})
	if err != nil {
		return err
	}
	delta := maxDelta(ref, out)

	_, pipeRate, err := timeRequests(shardPipeReqs, 2*n, func() error {
		_, err := p.Predict(cfg.Ctx, input)
		return err
	})
	if err != nil {
		return err
	}
	rep.AddRow(fmt.Sprintf("%d-shard", n),
		fmt.Sprintf("%.2f", seqMs), fmt.Sprintf("%.1f", seqRate),
		fmt.Sprintf("%.1f", pipeRate), fmt.Sprintf("%.2fx", pipeRate/seqRate),
		fmt.Sprintf("%g", delta))
	return nil
}

// timeRequests drives reqs requests at the given concurrency after a
// short warmup, returning the median per-request latency of the
// sequential portion (ms) and the overall request rate (req/s).
func timeRequests(reqs, conc int, run func() error) (medianMs, rate float64, err error) {
	for i := 0; i < shardWarmup; i++ {
		if err := run(); err != nil {
			return 0, 0, err
		}
	}
	start := time.Now()
	if conc <= 1 {
		lats := make([]float64, reqs)
		for i := range lats {
			t0 := time.Now()
			if err := run(); err != nil {
				return 0, 0, err
			}
			lats[i] = float64(time.Since(t0).Microseconds()) / 1000
		}
		sort.Float64s(lats)
		medianMs = lats[len(lats)/2]
	} else {
		var wg sync.WaitGroup
		errs := make(chan error, conc)
		per := reqs / conc
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if err := run(); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return 0, 0, err
		}
		reqs = per * conc
	}
	elapsed := time.Since(start).Seconds()
	return medianMs, float64(reqs) / elapsed, nil
}

// maxDelta returns the largest absolute elementwise difference.
func maxDelta(a, b []float32) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}
