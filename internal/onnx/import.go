package onnx

import (
	"fmt"
	"os"

	"orpheus/internal/graph"
	_ "orpheus/internal/ops" // register operator shape functions
	"orpheus/internal/tensor"
)

// Import converts an ONNX model into an Orpheus graph, mapping the ONNX
// operator set onto the Orpheus operator library and materialising
// initialisers as constants. Shape-carrying int64 initialisers (Reshape
// targets, Clip bounds) are absorbed into attributes.
func Import(m *Model) (*graph.Graph, error) {
	og := m.Graph
	g := graph.New(og.Name)

	// Initialisers become constants; int64 ones are kept aside for
	// attribute absorption.
	intInits := map[string][]int64{}
	isInit := map[string]bool{}
	for i := range og.Initializers {
		t := &og.Initializers[i]
		isInit[t.Name] = true
		switch t.DataType {
		case TensorFloat:
			shape := make([]int, len(t.Dims))
			vol := 1
			for j, d := range t.Dims {
				shape[j] = int(d)
				vol *= int(d)
			}
			if len(t.FloatData) != vol {
				return nil, fmt.Errorf("onnx: initializer %q has %d floats for shape %v", t.Name, len(t.FloatData), t.Dims)
			}
			if _, err := g.Const(t.Name, tensor.FromSlice(t.FloatData, shape...)); err != nil {
				return nil, err
			}
		case TensorInt64:
			intInits[t.Name] = t.Int64Data
		default:
			return nil, fmt.Errorf("onnx: initializer %q has unsupported type %d", t.Name, t.DataType)
		}
	}

	// Graph inputs (excluding initialisers re-listed as inputs, as older
	// exporters do).
	for _, vi := range og.Inputs {
		if isInit[vi.Name] {
			continue
		}
		shape := make([]int, len(vi.Shape))
		for i, d := range vi.Shape {
			if d < 0 {
				return nil, fmt.Errorf("onnx: input %q has dynamic dimension %d (unsupported)", vi.Name, i)
			}
			shape[i] = int(d)
		}
		if _, err := g.Input(vi.Name, shape); err != nil {
			return nil, err
		}
	}

	for i := range og.Nodes {
		if err := importNode(g, &og.Nodes[i], i, intInits); err != nil {
			return nil, err
		}
	}

	for _, vo := range og.Outputs {
		v := g.Value(vo.Name)
		if v == nil {
			return nil, fmt.Errorf("onnx: graph output %q is never produced", vo.Name)
		}
		if err := g.MarkOutput(v); err != nil {
			return nil, err
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, fmt.Errorf("onnx: imported graph invalid: %w", err)
	}
	return g, nil
}

// ImportFile reads an ONNX file into an Orpheus graph.
func ImportFile(path string) (*graph.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("onnx: parsing %s: %w", path, err)
	}
	return Import(m)
}

func importNode(g *graph.Graph, n *Node, idx int, intInits map[string][]int64) error {
	name := n.Name
	if name == "" {
		name = fmt.Sprintf("%s_%d", n.OpType, idx)
	}
	resolve := func(names []string) ([]*graph.Value, error) {
		out := make([]*graph.Value, 0, len(names))
		for _, vn := range names {
			if vn == "" {
				continue // optional ONNX input slot
			}
			v := g.Value(vn)
			if v == nil {
				return nil, fmt.Errorf("onnx: node %q reads unknown value %q", name, vn)
			}
			out = append(out, v)
		}
		return out, nil
	}

	attrInt := func(key string, def int64) int64 {
		if a := n.Attr(key); a != nil {
			return a.I
		}
		return def
	}
	attrFloat := func(key string, def float32) float32 {
		if a := n.Attr(key); a != nil {
			return a.F
		}
		return def
	}
	attrInts := func(key string) []int {
		a := n.Attr(key)
		if a == nil {
			return nil
		}
		out := make([]int, len(a.Ints))
		for i, v := range a.Ints {
			out[i] = int(v)
		}
		return out
	}

	add := func(op string, attrs graph.Attrs, inputs []*graph.Value) error {
		if len(n.Outputs) < 1 {
			return fmt.Errorf("onnx: node %q has no outputs", name)
		}
		// Dropout and BatchNormalization may declare extra outputs (mask,
		// saved stats); only the first is data and only it may be consumed
		// at inference time.
		_, err := g.AddMulti(op, name, attrs, inputs, n.Outputs[:1])
		return err
	}

	switch n.OpType {
	case "Conv":
		inputs, err := resolve(n.Inputs)
		if err != nil {
			return err
		}
		if a := n.Attr("auto_pad"); a != nil && a.S != "" && a.S != "NOTSET" {
			return fmt.Errorf("onnx: node %q uses auto_pad %q (only explicit pads supported)", name, a.S)
		}
		attrs := graph.Attrs{"group": int(attrInt("group", 1))}
		if s := attrInts("strides"); s != nil {
			attrs["strides"] = s
		}
		if p := attrInts("pads"); p != nil {
			attrs["pads"] = p // ONNX 2-D pads are [top, left, bottom, right]
		}
		if d := attrInts("dilations"); d != nil {
			attrs["dilations"] = d
		}
		return add("Conv", attrs, inputs)

	case "Gemm":
		inputs, err := resolve(n.Inputs)
		if err != nil {
			return err
		}
		if attrInt("transA", 0) != 0 {
			return fmt.Errorf("onnx: node %q: transA unsupported", name)
		}
		alpha, beta := attrFloat("alpha", 1), attrFloat("beta", 1)
		w := inputs[1]
		if !w.IsConst() {
			return fmt.Errorf("onnx: node %q: Gemm weight must be an initializer", name)
		}
		// Orpheus Dense expects W as [M, K] (transB=1 layout). Convert a
		// transB=0 weight by materialising its transpose.
		if attrInt("transB", 0) == 0 {
			wt := w.Const.Transpose(1, 0)
			nv, err := g.Const(w.Name+".T", wt)
			if err != nil {
				return err
			}
			inputs[1] = nv
			w = nv
		}
		if alpha != 1 {
			scaled := w.Const.Clone()
			scaled.Scale(alpha)
			nv, err := g.Const(w.Name+".alpha", scaled)
			if err != nil {
				return err
			}
			inputs[1] = nv
		}
		if len(inputs) == 3 && beta != 1 {
			b := inputs[2]
			if !b.IsConst() {
				return fmt.Errorf("onnx: node %q: Gemm beta != 1 with non-const bias", name)
			}
			scaled := b.Const.Clone()
			scaled.Scale(beta)
			nv, err := g.Const(b.Name+".beta", scaled)
			if err != nil {
				return err
			}
			inputs[2] = nv
		}
		return add("Dense", graph.Attrs{}, inputs)

	case "BatchNormalization":
		inputs, err := resolve(n.Inputs)
		if err != nil {
			return err
		}
		return add("BatchNorm", graph.Attrs{"epsilon": float64(attrFloat("epsilon", 1e-5))}, inputs)

	case "Relu", "Sigmoid", "Identity", "Dropout", "Add", "Mul":
		inputs, err := resolve(n.Inputs)
		if err != nil {
			return err
		}
		return add(n.OpType, graph.Attrs{}, inputs)

	case "LeakyRelu":
		inputs, err := resolve(n.Inputs)
		if err != nil {
			return err
		}
		return add("LeakyRelu", graph.Attrs{"alpha": float64(attrFloat("alpha", 0.01))}, inputs)

	case "Clip":
		// Bounds come from attributes (opset <= 6) or const inputs (>= 11).
		lo, hi := attrFloat("min", -3.4e38), attrFloat("max", 3.4e38)
		if len(n.Inputs) >= 2 && n.Inputs[1] != "" {
			if v := g.Value(n.Inputs[1]); v != nil && v.IsConst() && v.Const.Size() == 1 {
				lo = v.Const.Data()[0]
			}
		}
		if len(n.Inputs) >= 3 && n.Inputs[2] != "" {
			if v := g.Value(n.Inputs[2]); v != nil && v.IsConst() && v.Const.Size() == 1 {
				hi = v.Const.Data()[0]
			}
		}
		if lo != 0 || hi != 6 {
			return fmt.Errorf("onnx: node %q: Clip(%g, %g) unsupported (only ReLU6)", name, lo, hi)
		}
		inputs, err := resolve(n.Inputs[:1])
		if err != nil {
			return err
		}
		return add("Relu6", graph.Attrs{}, inputs)

	case "Softmax", "Concat", "Flatten":
		inputs, err := resolve(n.Inputs)
		if err != nil {
			return err
		}
		def := int64(1)
		return add(n.OpType, graph.Attrs{"axis": int(attrInt("axis", def))}, inputs)

	case "MaxPool", "AveragePool":
		inputs, err := resolve(n.Inputs)
		if err != nil {
			return err
		}
		kernel := attrInts("kernel_shape")
		if kernel == nil {
			return fmt.Errorf("onnx: node %q: kernel_shape required", name)
		}
		if attrInt("ceil_mode", 0) != 0 {
			return fmt.Errorf("onnx: node %q: ceil_mode unsupported", name)
		}
		attrs := graph.Attrs{"kernel": kernel}
		if s := attrInts("strides"); s != nil {
			attrs["strides"] = s
		}
		if p := attrInts("pads"); p != nil {
			attrs["pads"] = p
		}
		if attrInt("count_include_pad", 0) != 0 {
			attrs["count_include_pad"] = true
		}
		return add(n.OpType, attrs, inputs)

	case "GlobalAveragePool":
		inputs, err := resolve(n.Inputs)
		if err != nil {
			return err
		}
		return add("GlobalAveragePool", graph.Attrs{}, inputs)

	case "Reshape":
		inputs, err := resolve(n.Inputs[:1])
		if err != nil {
			return err
		}
		var shape []int
		if len(n.Inputs) >= 2 {
			ints, ok := intInits[n.Inputs[1]]
			if !ok {
				return fmt.Errorf("onnx: node %q: Reshape target must be an int64 initializer", name)
			}
			shape = make([]int, len(ints))
			for i, v := range ints {
				shape[i] = int(v)
			}
		} else if a := n.Attr("shape"); a != nil {
			shape = make([]int, len(a.Ints))
			for i, v := range a.Ints {
				shape[i] = int(v)
			}
		}
		if shape == nil {
			return fmt.Errorf("onnx: node %q: Reshape without target shape", name)
		}
		return add("Reshape", graph.Attrs{"shape": shape}, inputs)

	case "Pad":
		inputs, err := resolve(n.Inputs[:1])
		if err != nil {
			return err
		}
		if a := n.Attr("mode"); a != nil && a.S != "" && a.S != "constant" {
			return fmt.Errorf("onnx: node %q: Pad mode %q unsupported", name, a.S)
		}
		p := attrInts("pads")
		if len(p) != 8 {
			return fmt.Errorf("onnx: node %q: expected 8 pad values for 4-D input, got %v", name, p)
		}
		if p[0] != 0 || p[1] != 0 || p[4] != 0 || p[5] != 0 {
			return fmt.Errorf("onnx: node %q: padding batch/channel dims unsupported: %v", name, p)
		}
		return add("Pad", graph.Attrs{
			"pads":  []int{p[2], p[3], p[6], p[7]},
			"value": float64(attrFloat("value", 0)),
		}, inputs)

	default:
		return fmt.Errorf("onnx: operator %q (node %q) is not supported by the importer", n.OpType, name)
	}
}
