//go:build !noasm

#include "textflag.h"

// func minMaxF32AVX2(v *float32, n int64) (lo, hi float32)
//
// 8-lane running min/max over n elements (n a positive multiple of 8;
// the Go wrapper handles tails), then a horizontal reduce of each.
TEXT ·minMaxF32AVX2(SB), NOSPLIT, $0-24
	MOVQ v+0(FP), SI
	MOVQ n+8(FP), CX

	VBROADCASTSS (SI), Y0   // running min
	VMOVAPS      Y0, Y1     // running max

mmloop:
	VMOVUPS (SI), Y2
	VMINPS  Y2, Y0, Y0
	VMAXPS  Y2, Y1, Y1
	ADDQ    $32, SI
	SUBQ    $8, CX
	JNZ     mmloop

	// Horizontal reduce: fold high 128, then high pair, then element 1.
	VEXTRACTF128 $1, Y0, X2
	VMINPS       X2, X0, X0
	VSHUFPS      $0xEE, X0, X0, X2
	VMINPS       X2, X0, X0
	VSHUFPS      $0x55, X0, X0, X2
	VMINPS       X2, X0, X0

	VEXTRACTF128 $1, Y1, X2
	VMAXPS       X2, X1, X1
	VSHUFPS      $0xEE, X1, X1, X2
	VMAXPS       X2, X1, X1
	VSHUFPS      $0x55, X1, X1, X2
	VMAXPS       X2, X1, X1

	VMOVSS X0, lo+16(FP)
	VMOVSS X1, hi+20(FP)
	VZEROUPPER
	RET

// func quantizeU8AVX2(dst *byte, src *float32, n int64, inv, zf float32)
//
// dst[i] = clamp(trunc(src[i]*inv + zf), 0, 255) for n elements (n a
// positive multiple of 32; the Go wrapper handles tails). Four 8-float
// blocks are scaled, truncated with VCVTTPS2DQ (matching Go's int32
// conversion), clamped for free by the signed dword→word and unsigned
// word→byte pack saturations, and reordered to memory order with one
// VPERMD — 32 bytes stored per iteration.
TEXT ·quantizeU8AVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

	VBROADCASTSS inv+24(FP), Y6
	VBROADCASTSS zf+28(FP), Y7
	VMOVDQU      quantPerm<>(SB), Y5

qloop:
	VMOVUPS (SI), Y0
	VMOVUPS 32(SI), Y1
	VMOVUPS 64(SI), Y2
	VMOVUPS 96(SI), Y3

	VMULPS Y6, Y0, Y0
	VADDPS Y7, Y0, Y0
	VMULPS Y6, Y1, Y1
	VADDPS Y7, Y1, Y1
	VMULPS Y6, Y2, Y2
	VADDPS Y7, Y2, Y2
	VMULPS Y6, Y3, Y3
	VADDPS Y7, Y3, Y3

	VCVTTPS2DQ Y0, Y0
	VCVTTPS2DQ Y1, Y1
	VCVTTPS2DQ Y2, Y2
	VCVTTPS2DQ Y3, Y3

	VPACKSSDW Y1, Y0, Y0    // int16 [a0-3 b0-3 | a4-7 b4-7]
	VPACKSSDW Y3, Y2, Y2    // int16 [c0-3 d0-3 | c4-7 d4-7]
	VPACKUSWB Y2, Y0, Y0    // u8 dwords [a03 b03 c03 d03 | a47 b47 c47 d47]
	VPERMD    Y0, Y5, Y0    // -> [a03 a47 b03 b47 c03 c47 d03 d47]
	VMOVDQU   Y0, (DI)

	ADDQ $128, SI
	ADDQ $32, DI
	SUBQ $32, CX
	JNZ  qloop

	VZEROUPPER
	RET

DATA quantPerm<>+0(SB)/4, $0
DATA quantPerm<>+4(SB)/4, $4
DATA quantPerm<>+8(SB)/4, $1
DATA quantPerm<>+12(SB)/4, $5
DATA quantPerm<>+16(SB)/4, $2
DATA quantPerm<>+20(SB)/4, $6
DATA quantPerm<>+24(SB)/4, $3
DATA quantPerm<>+28(SB)/4, $7
GLOBL quantPerm<>(SB), RODATA, $32
