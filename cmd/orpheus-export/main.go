// orpheus-export writes the built-in model zoo (the paper's five
// evaluation networks) to ONNX files, standing in for "models exported
// from other training frameworks". The emitted files round-trip through
// any ONNX tooling and through orpheus-run / orpheus-inspect.
//
// Usage:
//
//	orpheus-export -dir models/                 # all five models
//	orpheus-export -dir models/ -models wrn-40-2,resnet-18
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"orpheus/internal/onnx"
	"orpheus/internal/zoo"
)

func main() {
	var (
		dir    = flag.String("dir", ".", "output directory")
		models = flag.String("models", "", "comma-separated subset (default: all)")
	)
	flag.Parse()

	names := zoo.Names()
	if *models != "" {
		names = strings.Split(*models, ",")
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range names {
		g, err := zoo.Build(name, 1)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*dir, name+".onnx")
		if err := onnx.ExportFile(g, path); err != nil {
			fatal(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %-28s %7.2f MB  (%d nodes, %.2fM params)\n",
			path, float64(info.Size())/(1<<20), len(g.Nodes), float64(g.NumParams())/1e6)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "orpheus-export:", err)
	os.Exit(1)
}
