package ops

import (
	"testing"

	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

func TestIdentityDropoutCopy(t *testing.T) {
	r := tensor.NewRNG(1)
	x := tensor.Rand(r, -1, 1, 2, 3)
	for _, tc := range []struct{ kernel, op string }{
		{"identity.copy", "Identity"},
		{"dropout.copy", "Dropout"},
	} {
		out := runKernel(t, tc.kernel, tc.op, nil, x)
		if !tensor.AllClose(out, x, 0) {
			t.Fatalf("%s is not a copy", tc.op)
		}
	}
}

func TestFlattenShapesAndData(t *testing.T) {
	r := tensor.NewRNG(2)
	x := tensor.Rand(r, -1, 1, 2, 3, 4)
	out := runKernel(t, "flatten.copy", "Flatten", graph.Attrs{"axis": 1}, x)
	if !tensor.ShapeEq(out.Shape(), []int{2, 12}) {
		t.Fatalf("flatten shape = %v", out.Shape())
	}
	if !tensor.AllClose(out.Reshape(2, 3, 4), x, 0) {
		t.Fatal("flatten reordered data")
	}
	out0 := runKernel(t, "flatten.copy", "Flatten", graph.Attrs{"axis": 0}, x)
	if !tensor.ShapeEq(out0.Shape(), []int{1, 24}) {
		t.Fatalf("flatten axis0 shape = %v", out0.Shape())
	}
}

func TestReshapeOp(t *testing.T) {
	r := tensor.NewRNG(3)
	x := tensor.Rand(r, -1, 1, 2, 6)
	out := runKernel(t, "reshape.copy", "Reshape", graph.Attrs{"shape": []int{3, -1}}, x)
	if !tensor.ShapeEq(out.Shape(), []int{3, 4}) {
		t.Fatalf("reshape shape = %v", out.Shape())
	}
	// ONNX zero-copy dim semantics.
	out2 := runKernel(t, "reshape.copy", "Reshape", graph.Attrs{"shape": []int{0, 6}}, x)
	if !tensor.ShapeEq(out2.Shape(), []int{2, 6}) {
		t.Fatalf("reshape 0-dim shape = %v", out2.Shape())
	}
}

func TestConcatOpMatchesTensorConcat(t *testing.T) {
	r := tensor.NewRNG(4)
	a := tensor.Rand(r, -1, 1, 1, 2, 2, 2)
	b := tensor.Rand(r, -1, 1, 1, 3, 2, 2)
	out := runKernel(t, "concat.copy", "Concat", graph.Attrs{"axis": 1}, a, b)
	want := tensor.Concat(1, a, b)
	if !tensor.AllClose(out, want, 0) {
		t.Fatal("Concat op diverges from tensor.Concat")
	}
}

func TestPadOpMatchesTensorPad(t *testing.T) {
	r := tensor.NewRNG(5)
	x := tensor.Rand(r, -1, 1, 1, 2, 3, 3)
	out := runKernel(t, "pad.copy", "Pad", graph.Attrs{"pads": []int{1, 2, 0, 1}, "value": 0.5}, x)
	want := x.Pad2D(1, 0, 2, 1, 0.5)
	if !tensor.AllClose(out, want, 0) {
		t.Fatal("Pad op diverges from tensor.Pad2D")
	}
}

func TestRegistryInvariants(t *testing.T) {
	// Every op has at least one kernel and a reference; every kernel's
	// Op() matches its registry bucket.
	for _, op := range Ops() {
		ks := ForOp(op)
		if len(ks) == 0 {
			t.Fatalf("op %q has no kernels", op)
		}
		if Reference(op) == nil {
			t.Fatalf("op %q has no reference kernel", op)
		}
		for _, k := range ks {
			if k.Op() != op {
				t.Fatalf("kernel %q registered under %q but reports op %q", k.Name(), op, k.Op())
			}
			if ByName(k.Name()) != k {
				t.Fatalf("kernel %q not retrievable by name", k.Name())
			}
		}
	}
	// Conv must expose the full algorithm menu — the paper's core claim.
	convKernels := ForOp("Conv")
	if len(convKernels) < 5 {
		t.Fatalf("Conv has %d kernels, want >= 5 (direct, im2col, spatialpack, winograd, depthwise, ...)", len(convKernels))
	}
	if Reference("Conv").Name() != "conv.direct" {
		t.Fatalf("Conv reference = %q, want conv.direct", Reference("Conv").Name())
	}
}

func TestEveryOpHasShapeFn(t *testing.T) {
	for _, op := range Ops() {
		if graph.ShapeFnFor(op) == nil {
			t.Fatalf("op %q has kernels but no shape function", op)
		}
	}
}

func TestDuplicateKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(NewKernel("conv.direct", "Conv", nil, nil))
}

func TestCtxScratchReuse(t *testing.T) {
	ctx := NewCtx(1)
	a := ctx.Scratch("k", nil, 100)
	a[0] = 42
	b := ctx.Scratch("k", nil, 50)
	if b[0] != 0 {
		t.Fatal("scratch not zeroed on reuse")
	}
	if ctx.PeakScratchBytes() != 400 {
		t.Fatalf("peak scratch = %d, want 400", ctx.PeakScratchBytes())
	}
	ctx2 := NewCtx(0)
	if ctx2.Workers != 1 {
		t.Fatal("workers should clamp to 1")
	}
	ctx2.DisableScratchReuse = true
	_ = ctx2.Scratch("k", nil, 10)
	_ = ctx2.Scratch("k", nil, 10)
	if ctx2.ScratchBytes != 80 {
		t.Fatalf("no-reuse scratch bytes = %d, want 80", ctx2.ScratchBytes)
	}
}

func TestCtxCache(t *testing.T) {
	ctx := NewCtx(1)
	if ctx.Cache("missing", nil) != nil {
		t.Fatal("missing cache key should be nil")
	}
	ctx.PutCache("u", nil, []float32{1, 2})
	got := ctx.Cache("u", nil)
	if len(got) != 2 || got[0] != 1 {
		t.Fatal("cache round-trip failed")
	}
}

// TestReshapeShapeInference pins reshapeShape's semantics, in particular
// the boundary between strict ONNX inference and the batch-relative
// fallback for baked flatten targets: only a literal leading 1 over a
// batched (leading dim > 1) input is reinterpreted; ordinary regrouping
// targets keep their strict meaning.
func TestReshapeShapeInference(t *testing.T) {
	fn := graph.ShapeFnFor("Reshape")
	if fn == nil {
		t.Fatal("Reshape shape fn not registered")
	}
	cases := []struct {
		name   string
		in     []int
		target []int
		want   []int
	}{
		// Strict ONNX semantics must survive the batch fallback.
		{"regroup on unit batch", []int{1, 24}, []int{2, -1}, []int{2, 12}},
		{"regroup on multi-row input", []int{4, 6}, []int{2, -1}, []int{2, 12}},
		{"inferred leading dim", []int{4, 6}, []int{-1, 8}, []int{3, 8}},
		{"exact literal", []int{2, 3, 4}, []int{6, 4}, []int{6, 4}},
		// The fallback: a baked [1, -1] flatten over a batched input keeps
		// the batch on the leading dim instead of folding it into -1.
		{"baked flatten batch 3", []int{3, 6, 8, 8}, []int{1, -1}, []int{3, 384}},
		{"baked flatten batch 1", []int{1, 6, 8, 8}, []int{1, -1}, []int{1, 384}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := graph.New("reshape-infer")
			x, err := g.Input("x", tc.in)
			if err != nil {
				t.Fatal(err)
			}
			n := &graph.Node{Op: "Reshape", Attrs: graph.Attrs{"shape": tc.target}, Inputs: []*graph.Value{x}}
			got, err := fn(n)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 || !tensor.ShapeEq(got[0], tc.want) {
				t.Fatalf("Reshape %v with target %v inferred %v, want %v", tc.in, tc.target, got, tc.want)
			}
		})
	}
}
