package zoo

import (
	"fmt"

	"orpheus/internal/graph"
)

// InceptionV3 builds Inception-v3 (Szegedy et al., torchvision layout,
// no auxiliary head) for 299x299 inputs: stem, 3×InceptionA, InceptionB,
// 4×InceptionC with factorised 7x1/1x7 convolutions, InceptionD,
// 2×InceptionE, ~25M parameters. Its mix of many small/rectangular
// convolutions makes it the structurally richest Figure 2 model.
func InceptionV3(batch int) (*graph.Graph, error) {
	b := newNet("inception-v3")
	x := b.input("input", []int{batch, 3, 299, 299})

	// Stem: 299 → 35x35x192.
	cur := b.convBNRelu("stem.1a", x, 3, 32, 3, 2, 0)    // 149
	cur = b.convBNRelu("stem.2a", cur, 32, 32, 3, 1, 0)  // 147
	cur = b.convBNRelu("stem.2b", cur, 32, 64, 3, 1, 1)  // 147
	cur = b.maxPool("stem.pool1", cur, 3, 2, 0)          // 73
	cur = b.convBNRelu("stem.3b", cur, 64, 80, 1, 1, 0)  // 73
	cur = b.convBNRelu("stem.4a", cur, 80, 192, 3, 1, 0) // 71
	cur = b.maxPool("stem.pool2", cur, 3, 2, 0)          // 35

	cin := 192
	for i, poolFeat := range []int{32, 64, 64} {
		cur = b.inceptionA(fmt.Sprintf("mixedA%d", i+1), cur, cin, poolFeat)
		cin = 224 + poolFeat
	}
	cur = b.inceptionB("mixedB", cur, cin) // 35 → 17, 768 ch
	cin = 768
	for i, c7 := range []int{128, 160, 160, 192} {
		cur = b.inceptionC(fmt.Sprintf("mixedC%d", i+1), cur, cin, c7)
	}
	cur = b.inceptionD("mixedD", cur, cin) // 17 → 8, 1280 ch
	cin = 1280
	for i := 0; i < 2; i++ {
		cur = b.inceptionE(fmt.Sprintf("mixedE%d", i+1), cur, cin)
		cin = 2048
	}
	out := b.classifierHead(cur, cin, 1000)
	return b.finish(out)
}

// convBNReluRect is convBNRelu with a rectangular kernel and asymmetric
// padding, used by the factorised 1x7/7x1 branches.
func (b *netBuilder) convBNReluRect(name string, x *graph.Value, cin, cout, kh, kw, stride, padH, padW int) *graph.Value {
	c := b.conv(name, x, cin, cout, kh, kw, stride, padH, padW, 1)
	n := b.bn(name+".bn", c, cout)
	return b.relu(name+".relu", n)
}

// inceptionA: 1x1(64) ‖ 5x5(48→64) ‖ double 3x3(64→96→96) ‖ pool→1x1(pf).
func (b *netBuilder) inceptionA(name string, x *graph.Value, cin, poolFeat int) *graph.Value {
	b1 := b.convBNRelu(name+".b1x1", x, cin, 64, 1, 1, 0)
	b5 := b.convBNRelu(name+".b5x5.1", x, cin, 48, 1, 1, 0)
	b5 = b.convBNRelu(name+".b5x5.2", b5, 48, 64, 5, 1, 2)
	b3 := b.convBNRelu(name+".b3x3.1", x, cin, 64, 1, 1, 0)
	b3 = b.convBNRelu(name+".b3x3.2", b3, 64, 96, 3, 1, 1)
	b3 = b.convBNRelu(name+".b3x3.3", b3, 96, 96, 3, 1, 1)
	bp := b.avgPool(name+".pool", x, 3, 1, 1)
	bp = b.convBNRelu(name+".bpool", bp, cin, poolFeat, 1, 1, 0)
	return b.concat(name+".cat", b1, b5, b3, bp)
}

// inceptionB: grid reduction 35→17.
func (b *netBuilder) inceptionB(name string, x *graph.Value, cin int) *graph.Value {
	b3 := b.convBNRelu(name+".b3x3", x, cin, 384, 3, 2, 0)
	bd := b.convBNRelu(name+".bdbl.1", x, cin, 64, 1, 1, 0)
	bd = b.convBNRelu(name+".bdbl.2", bd, 64, 96, 3, 1, 1)
	bd = b.convBNRelu(name+".bdbl.3", bd, 96, 96, 3, 2, 0)
	bp := b.maxPool(name+".pool", x, 3, 2, 0)
	return b.concat(name+".cat", b3, bd, bp)
}

// inceptionC: factorised 7x7 branches at 17x17.
func (b *netBuilder) inceptionC(name string, x *graph.Value, cin, c7 int) *graph.Value {
	b1 := b.convBNRelu(name+".b1x1", x, cin, 192, 1, 1, 0)
	b7 := b.convBNRelu(name+".b7.1", x, cin, c7, 1, 1, 0)
	b7 = b.convBNReluRect(name+".b7.2", b7, c7, c7, 1, 7, 1, 0, 3)
	b7 = b.convBNReluRect(name+".b7.3", b7, c7, 192, 7, 1, 1, 3, 0)
	bd := b.convBNRelu(name+".bd.1", x, cin, c7, 1, 1, 0)
	bd = b.convBNReluRect(name+".bd.2", bd, c7, c7, 7, 1, 1, 3, 0)
	bd = b.convBNReluRect(name+".bd.3", bd, c7, c7, 1, 7, 1, 0, 3)
	bd = b.convBNReluRect(name+".bd.4", bd, c7, c7, 7, 1, 1, 3, 0)
	bd = b.convBNReluRect(name+".bd.5", bd, c7, 192, 1, 7, 1, 0, 3)
	bp := b.avgPool(name+".pool", x, 3, 1, 1)
	bp = b.convBNRelu(name+".bpool", bp, cin, 192, 1, 1, 0)
	return b.concat(name+".cat", b1, b7, bd, bp)
}

// inceptionD: grid reduction 17→8.
func (b *netBuilder) inceptionD(name string, x *graph.Value, cin int) *graph.Value {
	b3 := b.convBNRelu(name+".b3.1", x, cin, 192, 1, 1, 0)
	b3 = b.convBNRelu(name+".b3.2", b3, 192, 320, 3, 2, 0)
	b7 := b.convBNRelu(name+".b7.1", x, cin, 192, 1, 1, 0)
	b7 = b.convBNReluRect(name+".b7.2", b7, 192, 192, 1, 7, 1, 0, 3)
	b7 = b.convBNReluRect(name+".b7.3", b7, 192, 192, 7, 1, 1, 3, 0)
	b7 = b.convBNRelu(name+".b7.4", b7, 192, 192, 3, 2, 0)
	bp := b.maxPool(name+".pool", x, 3, 2, 0)
	return b.concat(name+".cat", b3, b7, bp)
}

// inceptionE: widest block, with split-and-concat 1x3/3x1 pairs at 8x8.
func (b *netBuilder) inceptionE(name string, x *graph.Value, cin int) *graph.Value {
	b1 := b.convBNRelu(name+".b1x1", x, cin, 320, 1, 1, 0)
	b3 := b.convBNRelu(name+".b3.1", x, cin, 384, 1, 1, 0)
	b3a := b.convBNReluRect(name+".b3.2a", b3, 384, 384, 1, 3, 1, 0, 1)
	b3b := b.convBNReluRect(name+".b3.2b", b3, 384, 384, 3, 1, 1, 1, 0)
	b3cat := b.concat(name+".b3.cat", b3a, b3b)
	bd := b.convBNRelu(name+".bd.1", x, cin, 448, 1, 1, 0)
	bd = b.convBNRelu(name+".bd.2", bd, 448, 384, 3, 1, 1)
	bda := b.convBNReluRect(name+".bd.3a", bd, 384, 384, 1, 3, 1, 0, 1)
	bdb := b.convBNReluRect(name+".bd.3b", bd, 384, 384, 3, 1, 1, 1, 0)
	bdcat := b.concat(name+".bd.cat", bda, bdb)
	bp := b.avgPool(name+".pool", x, 3, 1, 1)
	bp = b.convBNRelu(name+".bpool", bp, cin, 192, 1, 1, 0)
	return b.concat(name+".cat", b1, b3cat, bdcat, bp)
}
