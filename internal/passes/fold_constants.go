package passes

import (
	"fmt"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
	"orpheus/internal/tensor"
)

// FoldConstants evaluates nodes whose inputs are all constants using the
// op's reference kernel and replaces their outputs with constant values.
// Weight-preprocessing chains emitted by exporters (transposes, reshapes,
// folded scales) disappear from the runtime graph this way.
func FoldConstants() Pass {
	return newPass("fold-constants", func(g *graph.Graph) (bool, error) {
		changed := false
		ctx := ops.NewCtx(1)
		for {
			n := findConstNode(g)
			if n == nil {
				return changed, nil
			}
			if err := foldNode(g, ctx, n); err != nil {
				return changed, err
			}
			changed = true
		}
	})
}

func findConstNode(g *graph.Graph) *graph.Node {
	for _, n := range g.Nodes {
		if ops.Reference(n.Op) == nil {
			continue
		}
		allConst := len(n.Inputs) > 0
		for _, in := range n.Inputs {
			if !in.IsConst() {
				allConst = false
				break
			}
		}
		if !allConst {
			continue
		}
		// Keep nodes whose outputs are graph outputs: the runtime expects
		// to produce them.
		anyOut := false
		for _, out := range n.Outputs {
			if isGraphOutput(g, out) {
				anyOut = true
				break
			}
		}
		if anyOut {
			continue
		}
		return n
	}
	return nil
}

func foldNode(g *graph.Graph, ctx *ops.Ctx, n *graph.Node) error {
	kernel := ops.Reference(n.Op)
	in := make([]*tensor.Tensor, len(n.Inputs))
	for i, v := range n.Inputs {
		in[i] = v.Const
	}
	// Output shapes must be inferred; Finalize before optimisation
	// guarantees this for the original nodes, and new consts carry shapes.
	out := make([]*tensor.Tensor, len(n.Outputs))
	for i, v := range n.Outputs {
		if v.Shape == nil {
			return fmt.Errorf("fold-constants: node %q output %q has no inferred shape", n.Name, v.Name)
		}
		out[i] = tensor.New(v.Shape...)
	}
	if err := kernel.Run(ctx, n, in, out); err != nil {
		return fmt.Errorf("fold-constants: evaluating %q (%s): %w", n.Name, n.Op, err)
	}
	for i, v := range n.Outputs {
		cv, err := g.Const(freshName(g, v.Name+".const"), out[i])
		if err != nil {
			return err
		}
		g.ReplaceUses(v, cv)
	}
	return g.RemoveNode(n)
}
