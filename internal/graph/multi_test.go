package graph

import (
	"testing"

	"orpheus/internal/tensor"
)

func init() {
	RegisterShapeFn("testSplit2", func(n *Node) ([][]int, error) {
		s := n.Inputs[0].Shape
		half := append([]int(nil), s...)
		half[len(half)-1] /= 2
		return [][]int{half, half}, nil
	})
}

func TestAddMultiOutputs(t *testing.T) {
	g := New("multi")
	x, err := g.Input("x", []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := g.AddMulti("testSplit2", "split", nil, []*Value{x}, []string{"lo", "hi"})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || outs[0].Name != "lo" || outs[1].Name != "hi" {
		t.Fatalf("outputs = %v", outs)
	}
	a, _ := g.Add("testRelu", "a", nil, outs[0])
	b, _ := g.Add("testRelu", "b", nil, outs[1])
	s, _ := g.Add("testAdd", "s", nil, a, b)
	if err := g.MarkOutput(s); err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(outs[0].Shape, []int{1, 4}) || !tensor.ShapeEq(s.Shape, []int{1, 4}) {
		t.Fatalf("shapes: %v, %v", outs[0].Shape, s.Shape)
	}
	// Both outputs share one producer.
	if outs[0].Producer != outs[1].Producer {
		t.Fatal("split outputs have different producers")
	}
}

func TestAddMultiDuplicateOutputName(t *testing.T) {
	g := New("dup")
	x, _ := g.Input("x", []int{1, 8})
	if _, err := g.AddMulti("testSplit2", "s", nil, []*Value{x}, []string{"y", "y"}); err == nil {
		t.Fatal("duplicate output names accepted")
	}
}

func TestValueNamesSorted(t *testing.T) {
	g := New("names")
	_, _ = g.Input("zeta", []int{1})
	_, _ = g.Const("alpha", tensor.New(1))
	_, _ = g.Input("mid", []int{1})
	names := g.ValueNames()
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Fatalf("ValueNames = %v", names)
	}
}

func TestRegisteredOpsListsShapeFns(t *testing.T) {
	found := false
	for _, op := range RegisteredOps() {
		if op == "testSplit2" {
			found = true
		}
	}
	if !found {
		t.Fatal("RegisteredOps missing testSplit2")
	}
	if ShapeFnFor("testSplit2") == nil || ShapeFnFor("noSuchThing") != nil {
		t.Fatal("ShapeFnFor lookup wrong")
	}
}

func TestDuplicateShapeFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate shape fn registration did not panic")
		}
	}()
	RegisterShapeFn("testSplit2", nil)
}

func TestCloneMultiOutput(t *testing.T) {
	g := New("cm")
	x, _ := g.Input("x", []int{1, 8})
	outs, _ := g.AddMulti("testSplit2", "split", nil, []*Value{x}, []string{"lo", "hi"})
	_ = g.MarkOutput(outs[0])
	_ = g.MarkOutput(outs[1])
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	if len(c.Outputs) != 2 || c.Value("lo") == g.Value("lo") {
		t.Fatal("clone of multi-output graph malformed")
	}
	if c.Value("lo").Producer != c.Value("hi").Producer {
		t.Fatal("clone split outputs lost shared producer")
	}
}
