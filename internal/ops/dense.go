package ops

import (
	"orpheus/internal/gemm"
	"orpheus/internal/graph"
	"orpheus/internal/tensor"
)

// Dense (fully connected) kernels.
//
//	inputs: X [N, K], W [M, K] (out×in, PyTorch convention), optional B [M]
//	output: Y [N, M] = X · Wᵀ + B
//
// dense.naive is the correctness reference; dense.gemm uses the packed
// GEMM on the transposed weight, with the transpose and its packed
// B-panels cached across runs (weights are graph constants). Both write
// every output element, so neither needs a zero-filled output.
func init() {
	Register(NewOverwritingKernel("dense.naive", "Dense", nil, runDenseNaive))
	Register(NewOverwritingKernel("dense.gemm", "Dense", nil, runDenseGemm))
}

func runDenseNaive(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	x, w := in[0], in[1]
	batch, k := x.Shape()[0], x.Shape()[1]
	m := w.Shape()[0]
	var bias []float32
	if len(in) == 3 {
		bias = in[2].Data()
	}
	xd, wd, yd := x.Data(), w.Data(), out[0].Data()
	for b := 0; b < batch; b++ {
		for j := 0; j < m; j++ {
			var acc float32
			if bias != nil {
				acc = bias[j]
			}
			row := wd[j*k : (j+1)*k]
			xr := xd[b*k : (b+1)*k]
			for p := 0; p < k; p++ {
				acc += xr[p] * row[p]
			}
			yd[b*m+j] = acc
		}
	}
	applyActivation(yd, n.Attrs.Str("activation", ""), float32(n.Attrs.Float("alpha", 0.01)))
	return nil
}

// transposeDense returns Wᵀ[K,M] for W[M,K].
func transposeDense(wd []float32, m, k int) []float32 {
	wt := make([]float32, k*m)
	for j := 0; j < m; j++ {
		for p := 0; p < k; p++ {
			wt[p*m+j] = wd[j*k+p]
		}
	}
	return wt
}

func runDenseGemm(ctx *Ctx, n *graph.Node, in, out []*tensor.Tensor) error {
	x, w := in[0], in[1]
	batch, k := x.Shape()[0], x.Shape()[1]
	m := w.Shape()[0]
	// Y[N,M] = X[N,K] · Wᵀ[K,M]. W is run-invariant, so the production
	// path caches only the prepacked B-panels of the transpose (the raw
	// transpose is a local stepping stone); the per-call-allocation
	// simulation caches the raw transpose and repacks per run, as the
	// seed did.
	var wt, pb []float32
	if ctx.DisableScratchReuse {
		wt = ctx.Cache("dense.gemm/wt", n)
		if wt == nil {
			wt = transposeDense(w.Data(), m, k)
			ctx.PutCache("dense.gemm/wt", n, wt)
		}
	} else {
		pb = ctx.Cache("dense.gemm/pwt", n)
		if pb == nil {
			pb = gemm.PrepackB(transposeDense(w.Data(), m, k), k, m)
			ctx.PutCache("dense.gemm/pwt", n, pb)
		}
	}
	// Bias is per output feature — a GEMM column — and the activation
	// follows it, so both ride the epilogue at tile store instead of two
	// extra sweeps over Y.
	var bias []float32
	if len(in) == 3 {
		bias = in[2].Data()
	}
	yd := out[0].Data()
	ctx.GEMM(gemm.Call{A: x.Data(), B: wt, PackedB: pb, C: yd,
		M: batch, N: m, K: k, Store: true,
		BiasCol: bias,
		Act:     gemmActivation(n.Attrs.Str("activation", "")),
		Alpha:   float32(n.Attrs.Float("alpha", 0.01))})
	return nil
}
