package passes

import (
	"fmt"

	"orpheus/internal/graph"
	"orpheus/internal/ops"
)

// PartitionPipeline prepares a graph for pipeline-parallel execution: it
// optimises a clone through the standard pass pipeline (so cut shapes
// reflect the execution graph, not the imported one — folded BatchNorms,
// fused activations), then splits it into k stage subgraphs at the
// cut points that minimise total transfer bytes per inference, with
// per-node flop estimates driving the compute-balance constraint.
//
// Every consumer of a partition derives it through this function — the
// orpheus-shard runner, the pipeline driver and orpheus-inspect -cuts —
// so all of them agree on shard boundaries for a given (model, k) pair
// without exchanging anything but the shard index.
func PartitionPipeline(g *graph.Graph, k int) (*graph.PartitionResult, error) {
	work := g.Clone()
	if err := work.Finalize(); err != nil {
		return nil, err
	}
	if _, err := Default().Run(work); err != nil {
		return nil, err
	}
	res, err := graph.Partition(work, graph.PartitionOptions{
		Shards:   k,
		NodeCost: ops.NodeFlops,
	})
	if err != nil {
		return nil, fmt.Errorf("passes: partition %q into %d shards: %w", g.Name, k, err)
	}
	return res, nil
}

// PipelineCuts enumerates the candidate cut points of the optimised graph
// — the same set PartitionPipeline chooses from — for auditing from the
// CLI. The graph is cloned and optimised first, so positions and transfer
// bytes match what a partition would actually use.
func PipelineCuts(g *graph.Graph) ([]graph.CutPoint, error) {
	work := g.Clone()
	if err := work.Finalize(); err != nil {
		return nil, err
	}
	if _, err := Default().Run(work); err != nil {
		return nil, err
	}
	return graph.CutPoints(work)
}
