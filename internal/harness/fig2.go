package harness

import (
	"fmt"

	"orpheus/internal/backend"
	"orpheus/internal/zoo"
)

// Figure 2: inference time (1 thread) for the five network models across
// frameworks. DarkNet rows appear only for the ResNets and TF-Lite is
// excluded from single-thread runs — both exactly as reported in the
// paper's evaluation section.
func init() {
	register(&Experiment{
		ID:    "fig2",
		Title: "Inference time (1 thread) for the five network models",
		Run:   runFig2,
	})
}

// fig2BackendNames lists the frameworks in the figure's legend order.
var fig2BackendNames = []string{"orpheus", "tvm-sim", "torch-sim", "darknet-sim", "tflite-sim"}

// RunFig2 executes the Figure 2 experiment and returns both the raw
// results and the formatted report (exported for the bench harness and
// tests).
func RunFig2(cfg *Config) ([]modelResult, *Report, error) {
	cfg.fill()
	rep := &Report{ID: "fig2", Title: "Inference time (1 thread), batch 1"}
	switch cfg.Mode {
	case ModeBoth:
		rep.Header = []string{"model", "framework", "simulated A73 ms", "measured host ms"}
	case ModeMeasure:
		rep.Header = []string{"model", "framework", "measured host ms"}
	default:
		rep.Header = []string{"model", "framework", "simulated A73 ms"}
	}

	var results []modelResult
	for _, modelName := range cfg.Models {
		g, err := zoo.Build(modelName, 1)
		if err != nil {
			return nil, nil, err
		}
		for _, bname := range fig2BackendNames {
			b, err := backend.ByName(bname)
			if err != nil {
				return nil, nil, err
			}
			res := runModelBackend(cfg, g, modelName, b)
			results = append(results, res)
			if res.excluded != "" {
				switch cfg.Mode {
				case ModeBoth:
					rep.AddRow(modelName, b.Paper, "n/a", "n/a")
				default:
					rep.AddRow(modelName, b.Paper, "n/a")
				}
				rep.AddNote("%s on %s: %s", b.Paper, modelName, res.excluded)
				continue
			}
			switch cfg.Mode {
			case ModeBoth:
				rep.AddRow(modelName, b.Paper, fmtMs(res.simMs), fmtMs(res.measuredMs))
			case ModeMeasure:
				rep.AddRow(modelName, b.Paper, fmtMs(res.measuredMs))
			default:
				rep.AddRow(modelName, b.Paper, fmtMs(res.simMs))
			}
		}
	}
	for _, note := range fig2ShapeNotes(results, cfg.Mode) {
		rep.AddNote("%s", note)
	}
	return results, rep, nil
}

func runFig2(cfg *Config) (*Report, error) {
	_, rep, err := RunFig2(cfg)
	return rep, err
}

func fmtMs(ms float64) string {
	if ms >= 1000 {
		return fmt.Sprintf("%.0f", ms)
	}
	if ms >= 100 {
		return fmt.Sprintf("%.1f", ms)
	}
	return fmt.Sprintf("%.2f", ms)
}

// fig2ShapeNotes summarises who wins each model — the property the paper's
// Figure 2 demonstrates.
func fig2ShapeNotes(results []modelResult, mode Mode) []string {
	winners := map[string]string{}
	best := map[string]float64{}
	for _, r := range results {
		if r.excluded != "" || r.backendName == "darknet-sim" || r.backendName == "tflite-sim" {
			continue
		}
		ms := r.ms(mode)
		if ms <= 0 {
			continue
		}
		if cur, ok := best[r.model]; !ok || ms < cur {
			best[r.model] = ms
			winners[r.model] = r.backendName
		}
	}
	var notes []string
	for _, m := range zoo.Names() {
		if w, ok := winners[m]; ok {
			notes = append(notes, fmt.Sprintf("fastest on %s: %s", m, w))
		}
	}
	return notes
}

// Fig2Winners maps model name to the fastest of the three main frameworks
// (used by tests and Table I's derived performance row).
func Fig2Winners(cfg *Config) (map[string]string, error) {
	cfg.fill()
	results, _, err := RunFig2(cfg)
	if err != nil {
		return nil, err
	}
	winners := map[string]string{}
	best := map[string]float64{}
	for _, r := range results {
		if r.excluded != "" || r.backendName == "darknet-sim" || r.backendName == "tflite-sim" {
			continue
		}
		ms := r.ms(cfg.Mode)
		if cur, ok := best[r.model]; !ok || ms < cur {
			best[r.model] = ms
			winners[r.model] = r.backendName
		}
	}
	return winners, nil
}
