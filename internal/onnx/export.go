package onnx

import (
	"fmt"
	"os"

	"orpheus/internal/graph"
)

// Export converts an Orpheus graph into an ONNX model. Fused-activation
// attributes (produced by the optimisation passes) are expanded back into
// standalone activation nodes so the output is plain, portable ONNX.
func Export(g *graph.Graph) (*Model, error) {
	m := &Model{IRVersion: 7, OpsetVersion: 11, ProducerName: "orpheus"}
	m.Graph.Name = g.Name
	for _, in := range g.Inputs {
		m.Graph.Inputs = append(m.Graph.Inputs, valueInfo(in))
	}
	for _, out := range g.Outputs {
		m.Graph.Outputs = append(m.Graph.Outputs, valueInfo(out))
	}
	// Initializers in stable (sorted-name) order.
	for _, name := range g.ValueNames() {
		v := g.Value(name)
		if !v.IsConst() {
			continue
		}
		dims := make([]int64, len(v.Const.Shape()))
		for i, d := range v.Const.Shape() {
			dims[i] = int64(d)
		}
		m.Graph.Initializers = append(m.Graph.Initializers, Tensor{
			Name: name, Dims: dims, DataType: TensorFloat, FloatData: v.Const.Data(),
		})
	}
	for _, n := range g.Nodes {
		nodes, extraInits, err := exportNode(n)
		if err != nil {
			return nil, fmt.Errorf("onnx: exporting node %q: %w", n.Name, err)
		}
		m.Graph.Nodes = append(m.Graph.Nodes, nodes...)
		m.Graph.Initializers = append(m.Graph.Initializers, extraInits...)
	}
	return m, nil
}

// ExportFile writes g to path as an ONNX file.
func ExportFile(g *graph.Graph, path string) error {
	m, err := Export(g)
	if err != nil {
		return err
	}
	return os.WriteFile(path, m.Marshal(), 0o644)
}

func valueInfo(v *graph.Value) ValueInfo {
	shape := make([]int64, len(v.Shape))
	for i, d := range v.Shape {
		shape[i] = int64(d)
	}
	return ValueInfo{Name: v.Name, ElemType: TensorFloat, Shape: shape}
}

func ints64(xs []int) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = int64(x)
	}
	return out
}

func exportNode(n *graph.Node) ([]Node, []Tensor, error) {
	inputs := make([]string, len(n.Inputs))
	for i, in := range n.Inputs {
		inputs[i] = in.Name
	}
	outputs := make([]string, len(n.Outputs))
	for i, out := range n.Outputs {
		outputs[i] = out.Name
	}
	base := Node{Name: n.Name, Inputs: inputs, Outputs: outputs}

	var extra []Tensor
	switch n.Op {
	case "Conv":
		base.OpType = "Conv"
		base.Attributes = []Attribute{
			{Name: "strides", Type: AttrInts, Ints: ints64(n.Attrs.Ints("strides", []int{1, 1}))},
			{Name: "pads", Type: AttrInts, Ints: ints64(n.Attrs.Ints("pads", []int{0, 0, 0, 0}))},
			{Name: "dilations", Type: AttrInts, Ints: ints64(n.Attrs.Ints("dilations", []int{1, 1}))},
			{Name: "group", Type: AttrInt, I: int64(n.Attrs.Int("group", 1))},
		}
	case "Dense":
		base.OpType = "Gemm"
		base.Attributes = []Attribute{
			{Name: "alpha", Type: AttrFloat, F: 1},
			{Name: "beta", Type: AttrFloat, F: 1},
			{Name: "transB", Type: AttrInt, I: 1},
		}
	case "BatchNorm":
		base.OpType = "BatchNormalization"
		base.Attributes = []Attribute{
			{Name: "epsilon", Type: AttrFloat, F: float32(n.Attrs.Float("epsilon", 1e-5))},
		}
	case "Relu":
		base.OpType = "Relu"
	case "Relu6":
		base.OpType = "Clip"
		base.Attributes = []Attribute{
			{Name: "min", Type: AttrFloat, F: 0},
			{Name: "max", Type: AttrFloat, F: 6},
		}
	case "LeakyRelu":
		base.OpType = "LeakyRelu"
		base.Attributes = []Attribute{
			{Name: "alpha", Type: AttrFloat, F: float32(n.Attrs.Float("alpha", 0.01))},
		}
	case "Sigmoid":
		base.OpType = "Sigmoid"
	case "Softmax":
		base.OpType = "Softmax"
		base.Attributes = []Attribute{{Name: "axis", Type: AttrInt, I: int64(n.Attrs.Int("axis", 1))}}
	case "Add", "Mul", "Identity":
		base.OpType = n.Op
	case "Dropout":
		base.OpType = "Dropout"
	case "Concat":
		base.OpType = "Concat"
		base.Attributes = []Attribute{{Name: "axis", Type: AttrInt, I: int64(n.Attrs.Int("axis", 1))}}
	case "Flatten":
		base.OpType = "Flatten"
		base.Attributes = []Attribute{{Name: "axis", Type: AttrInt, I: int64(n.Attrs.Int("axis", 1))}}
	case "MaxPool", "AveragePool":
		base.OpType = n.Op
		base.Attributes = []Attribute{
			{Name: "kernel_shape", Type: AttrInts, Ints: ints64(n.Attrs.Ints("kernel", nil))},
			{Name: "strides", Type: AttrInts, Ints: ints64(n.Attrs.Ints("strides", n.Attrs.Ints("kernel", nil)))},
			{Name: "pads", Type: AttrInts, Ints: ints64(n.Attrs.Ints("pads", []int{0, 0, 0, 0}))},
		}
		if n.Op == "AveragePool" && n.Attrs.Bool("count_include_pad", false) {
			base.Attributes = append(base.Attributes, Attribute{Name: "count_include_pad", Type: AttrInt, I: 1})
		}
	case "GlobalAveragePool":
		base.OpType = "GlobalAveragePool"
	case "Reshape":
		base.OpType = "Reshape"
		shape := ints64(n.Attrs.Ints("shape", nil))
		shapeName := n.Name + ".shape"
		extra = append(extra, Tensor{
			Name: shapeName, Dims: []int64{int64(len(shape))}, DataType: TensorInt64, Int64Data: shape,
		})
		base.Inputs = append(base.Inputs, shapeName)
	case "Pad":
		base.OpType = "Pad"
		p := n.Attrs.Ints("pads", nil)
		base.Attributes = []Attribute{
			{Name: "mode", Type: AttrString, S: "constant"},
			// ONNX 4-D pads: [n_begin, c_begin, h_begin, w_begin, n_end, c_end, h_end, w_end].
			{Name: "pads", Type: AttrInts, Ints: []int64{0, 0, int64(p[0]), int64(p[1]), 0, 0, int64(p[2]), int64(p[3])}},
			{Name: "value", Type: AttrFloat, F: float32(n.Attrs.Float("value", 0))},
		}
	default:
		return nil, nil, fmt.Errorf("op %q has no ONNX mapping", n.Op)
	}

	// Expand a fused activation into a standalone ONNX node.
	act := n.Attrs.Str("activation", "")
	if act == "" {
		return []Node{base}, extra, nil
	}
	mid := n.Outputs[0].Name + ".prefused"
	actNode := Node{Name: n.Name + ".act", Inputs: []string{mid}, Outputs: []string{n.Outputs[0].Name}}
	switch act {
	case "relu":
		actNode.OpType = "Relu"
	case "relu6":
		actNode.OpType = "Clip"
		actNode.Attributes = []Attribute{{Name: "min", Type: AttrFloat, F: 0}, {Name: "max", Type: AttrFloat, F: 6}}
	case "leakyrelu":
		actNode.OpType = "LeakyRelu"
		actNode.Attributes = []Attribute{{Name: "alpha", Type: AttrFloat, F: float32(n.Attrs.Float("alpha", 0.01))}}
	default:
		return nil, nil, fmt.Errorf("fused activation %q has no ONNX mapping", act)
	}
	base.Outputs = []string{mid}
	return []Node{base, actNode}, extra, nil
}
