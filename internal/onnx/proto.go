// Package onnx reads and writes the subset of the ONNX format that
// Orpheus needs to exchange models with training frameworks (the paper's
// "system to parse pre-trained models exported to the ONNX format").
// Serialisation uses the from-scratch protobuf codec in onnx/wire; no
// generated code or external dependencies are involved.
//
// Supported messages: ModelProto, GraphProto, NodeProto, AttributeProto,
// TensorProto (float32 and int64), ValueInfoProto and the TypeProto chain,
// with field numbers from the official onnx.proto3.
package onnx

import (
	"encoding/binary"
	"fmt"
	"math"

	"orpheus/internal/onnx/wire"
)

// Tensor element types (TensorProto.DataType).
const (
	TensorFloat = 1
	TensorInt64 = 7
)

// Attribute types (AttributeProto.AttributeType).
const (
	AttrFloat   = 1
	AttrInt     = 2
	AttrString  = 3
	AttrTensor  = 4
	AttrFloats  = 6
	AttrInts    = 7
	AttrStrings = 8
)

// Model mirrors ModelProto.
type Model struct {
	IRVersion    int64
	OpsetVersion int64
	ProducerName string
	Graph        Graph
}

// Graph mirrors GraphProto.
type Graph struct {
	Name         string
	Nodes        []Node
	Initializers []Tensor
	Inputs       []ValueInfo
	Outputs      []ValueInfo
}

// Node mirrors NodeProto.
type Node struct {
	Name       string
	OpType     string
	Inputs     []string
	Outputs    []string
	Attributes []Attribute
}

// Attr returns the named attribute, or nil.
func (n *Node) Attr(name string) *Attribute {
	for i := range n.Attributes {
		if n.Attributes[i].Name == name {
			return &n.Attributes[i]
		}
	}
	return nil
}

// Attribute mirrors AttributeProto (single-value and repeated forms).
type Attribute struct {
	Name    string
	Type    int
	F       float32
	I       int64
	S       string
	T       *Tensor
	Floats  []float32
	Ints    []int64
	Strings []string
}

// Tensor mirrors TensorProto. Exactly one of FloatData/Int64Data/RawData
// is set on write; on read RawData is decoded into the typed fields.
type Tensor struct {
	Name      string
	Dims      []int64
	DataType  int
	FloatData []float32
	Int64Data []int64
}

// ValueInfo mirrors ValueInfoProto for dense float tensors.
type ValueInfo struct {
	Name     string
	ElemType int
	Shape    []int64
}

// --- Encoding ---

// Marshal serialises the model to ONNX bytes.
func (m *Model) Marshal() []byte {
	var e wire.Encoder
	e.Int64(1, m.IRVersion)
	e.String(2, m.ProducerName)
	e.Message(7, m.Graph.encode)
	e.Message(8, func(op *wire.Encoder) {
		op.String(1, "") // default domain
		op.Int64(2, m.OpsetVersion)
	})
	return e.Encoded()
}

func (g *Graph) encode(e *wire.Encoder) {
	for i := range g.Nodes {
		e.Message(1, g.Nodes[i].encode)
	}
	e.String(2, g.Name)
	for i := range g.Initializers {
		e.Message(5, g.Initializers[i].encode)
	}
	for i := range g.Inputs {
		e.Message(11, g.Inputs[i].encode)
	}
	for i := range g.Outputs {
		e.Message(12, g.Outputs[i].encode)
	}
}

func (n *Node) encode(e *wire.Encoder) {
	for _, in := range n.Inputs {
		e.String(1, in)
	}
	for _, out := range n.Outputs {
		e.String(2, out)
	}
	e.String(3, n.Name)
	e.String(4, n.OpType)
	for i := range n.Attributes {
		e.Message(5, n.Attributes[i].encode)
	}
}

func (a *Attribute) encode(e *wire.Encoder) {
	e.String(1, a.Name)
	switch a.Type {
	case AttrFloat:
		e.Float32(2, a.F)
	case AttrInt:
		e.Int64(3, a.I)
	case AttrString:
		e.String(4, a.S)
	case AttrTensor:
		e.Message(5, a.T.encode)
	case AttrFloats:
		e.PackedFloat32(7, a.Floats)
	case AttrInts:
		e.PackedInt64(8, a.Ints)
	case AttrStrings:
		for _, s := range a.Strings {
			e.String(9, s)
		}
	}
	e.Int64(20, int64(a.Type))
}

func (t *Tensor) encode(e *wire.Encoder) {
	e.PackedInt64(1, t.Dims)
	e.Int64(2, int64(t.DataType))
	e.String(8, t.Name)
	// Raw little-endian data keeps exporters compatible with common ONNX
	// producers (PyTorch exports raw_data for float weights).
	switch t.DataType {
	case TensorFloat:
		raw := make([]byte, 4*len(t.FloatData))
		for i, v := range t.FloatData {
			binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
		}
		e.Bytes(9, raw)
	case TensorInt64:
		raw := make([]byte, 8*len(t.Int64Data))
		for i, v := range t.Int64Data {
			binary.LittleEndian.PutUint64(raw[8*i:], uint64(v))
		}
		e.Bytes(9, raw)
	}
}

func (v *ValueInfo) encode(e *wire.Encoder) {
	e.String(1, v.Name)
	e.Message(2, func(tp *wire.Encoder) {
		tp.Message(1, func(tt *wire.Encoder) {
			tt.Int64(1, int64(v.ElemType))
			tt.Message(2, func(sh *wire.Encoder) {
				for _, d := range v.Shape {
					sh.Message(1, func(dim *wire.Encoder) {
						dim.Int64(1, d)
					})
				}
			})
		})
	})
}

// --- Decoding ---

// Unmarshal parses ONNX bytes into a Model.
func Unmarshal(data []byte) (*Model, error) {
	m := &Model{}
	d := wire.NewDecoder(data)
	for d.More() {
		field, wtype, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1:
			if m.IRVersion, err = d.Int64(); err != nil {
				return nil, err
			}
		case 2:
			if m.ProducerName, err = d.String(); err != nil {
				return nil, err
			}
		case 7:
			b, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			if err := m.Graph.decode(b); err != nil {
				return nil, err
			}
		case 8:
			b, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			ver, err := decodeOpset(b)
			if err != nil {
				return nil, err
			}
			if ver > m.OpsetVersion {
				m.OpsetVersion = ver
			}
		default:
			if err := d.Skip(wtype); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

func decodeOpset(b []byte) (int64, error) {
	d := wire.NewDecoder(b)
	var ver int64
	for d.More() {
		field, wtype, err := d.Next()
		if err != nil {
			return 0, err
		}
		if field == 2 {
			if ver, err = d.Int64(); err != nil {
				return 0, err
			}
			continue
		}
		if err := d.Skip(wtype); err != nil {
			return 0, err
		}
	}
	return ver, nil
}

func (g *Graph) decode(b []byte) error {
	d := wire.NewDecoder(b)
	for d.More() {
		field, wtype, err := d.Next()
		if err != nil {
			return err
		}
		switch field {
		case 1:
			nb, err := d.Bytes()
			if err != nil {
				return err
			}
			var n Node
			if err := n.decode(nb); err != nil {
				return err
			}
			g.Nodes = append(g.Nodes, n)
		case 2:
			if g.Name, err = d.String(); err != nil {
				return err
			}
		case 5:
			tb, err := d.Bytes()
			if err != nil {
				return err
			}
			var t Tensor
			if err := t.decode(tb); err != nil {
				return err
			}
			g.Initializers = append(g.Initializers, t)
		case 11, 12:
			vb, err := d.Bytes()
			if err != nil {
				return err
			}
			var v ValueInfo
			if err := v.decode(vb); err != nil {
				return err
			}
			if field == 11 {
				g.Inputs = append(g.Inputs, v)
			} else {
				g.Outputs = append(g.Outputs, v)
			}
		default:
			if err := d.Skip(wtype); err != nil {
				return err
			}
		}
	}
	return nil
}

func (n *Node) decode(b []byte) error {
	d := wire.NewDecoder(b)
	for d.More() {
		field, wtype, err := d.Next()
		if err != nil {
			return err
		}
		switch field {
		case 1:
			s, err := d.String()
			if err != nil {
				return err
			}
			n.Inputs = append(n.Inputs, s)
		case 2:
			s, err := d.String()
			if err != nil {
				return err
			}
			n.Outputs = append(n.Outputs, s)
		case 3:
			if n.Name, err = d.String(); err != nil {
				return err
			}
		case 4:
			if n.OpType, err = d.String(); err != nil {
				return err
			}
		case 5:
			ab, err := d.Bytes()
			if err != nil {
				return err
			}
			var a Attribute
			if err := a.decode(ab); err != nil {
				return err
			}
			n.Attributes = append(n.Attributes, a)
		default:
			if err := d.Skip(wtype); err != nil {
				return err
			}
		}
	}
	return nil
}

func (a *Attribute) decode(b []byte) error {
	d := wire.NewDecoder(b)
	for d.More() {
		field, wtype, err := d.Next()
		if err != nil {
			return err
		}
		switch field {
		case 1:
			if a.Name, err = d.String(); err != nil {
				return err
			}
		case 2:
			if a.F, err = d.Float32(); err != nil {
				return err
			}
		case 3:
			if a.I, err = d.Int64(); err != nil {
				return err
			}
		case 4:
			if a.S, err = d.String(); err != nil {
				return err
			}
		case 5:
			tb, err := d.Bytes()
			if err != nil {
				return err
			}
			a.T = &Tensor{}
			if err := a.T.decode(tb); err != nil {
				return err
			}
		case 7:
			if wtype == wire.TypeBytes {
				if a.Floats, err = d.PackedFloat32(); err != nil {
					return err
				}
			} else {
				v, err := d.Float32()
				if err != nil {
					return err
				}
				a.Floats = append(a.Floats, v)
			}
		case 8:
			if wtype == wire.TypeBytes {
				if a.Ints, err = d.PackedInt64(); err != nil {
					return err
				}
			} else {
				v, err := d.Int64()
				if err != nil {
					return err
				}
				a.Ints = append(a.Ints, v)
			}
		case 9:
			s, err := d.String()
			if err != nil {
				return err
			}
			a.Strings = append(a.Strings, s)
		case 20:
			v, err := d.Int64()
			if err != nil {
				return err
			}
			a.Type = int(v)
		default:
			if err := d.Skip(wtype); err != nil {
				return err
			}
		}
	}
	if a.Type == 0 {
		// Tolerate writers that omit the type field by inferring it.
		switch {
		case a.T != nil:
			a.Type = AttrTensor
		case len(a.Ints) > 0:
			a.Type = AttrInts
		case len(a.Floats) > 0:
			a.Type = AttrFloats
		case len(a.Strings) > 0:
			a.Type = AttrStrings
		case a.S != "":
			a.Type = AttrString
		case a.I != 0:
			a.Type = AttrInt
		case a.F != 0:
			a.Type = AttrFloat
		}
	}
	return nil
}

func (t *Tensor) decode(b []byte) error {
	d := wire.NewDecoder(b)
	var raw []byte
	for d.More() {
		field, wtype, err := d.Next()
		if err != nil {
			return err
		}
		switch field {
		case 1:
			if wtype == wire.TypeBytes {
				if t.Dims, err = d.PackedInt64(); err != nil {
					return err
				}
			} else {
				v, err := d.Int64()
				if err != nil {
					return err
				}
				t.Dims = append(t.Dims, v)
			}
		case 2:
			v, err := d.Int64()
			if err != nil {
				return err
			}
			t.DataType = int(v)
		case 4:
			if wtype == wire.TypeBytes {
				if t.FloatData, err = d.PackedFloat32(); err != nil {
					return err
				}
			} else {
				v, err := d.Float32()
				if err != nil {
					return err
				}
				t.FloatData = append(t.FloatData, v)
			}
		case 7:
			if wtype == wire.TypeBytes {
				if t.Int64Data, err = d.PackedInt64(); err != nil {
					return err
				}
			} else {
				v, err := d.Int64()
				if err != nil {
					return err
				}
				t.Int64Data = append(t.Int64Data, v)
			}
		case 8:
			if t.Name, err = d.String(); err != nil {
				return err
			}
		case 9:
			if raw, err = d.Bytes(); err != nil {
				return err
			}
		default:
			if err := d.Skip(wtype); err != nil {
				return err
			}
		}
	}
	if raw != nil {
		switch t.DataType {
		case TensorFloat:
			if len(raw)%4 != 0 {
				return fmt.Errorf("onnx: raw float tensor %q has %d bytes", t.Name, len(raw))
			}
			t.FloatData = make([]float32, len(raw)/4)
			for i := range t.FloatData {
				t.FloatData[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
			}
		case TensorInt64:
			if len(raw)%8 != 0 {
				return fmt.Errorf("onnx: raw int64 tensor %q has %d bytes", t.Name, len(raw))
			}
			t.Int64Data = make([]int64, len(raw)/8)
			for i := range t.Int64Data {
				t.Int64Data[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
			}
		default:
			return fmt.Errorf("onnx: tensor %q has unsupported data type %d", t.Name, t.DataType)
		}
	}
	return nil
}

func (v *ValueInfo) decode(b []byte) error {
	d := wire.NewDecoder(b)
	for d.More() {
		field, wtype, err := d.Next()
		if err != nil {
			return err
		}
		switch field {
		case 1:
			if v.Name, err = d.String(); err != nil {
				return err
			}
		case 2:
			tb, err := d.Bytes()
			if err != nil {
				return err
			}
			if err := v.decodeType(tb); err != nil {
				return err
			}
		default:
			if err := d.Skip(wtype); err != nil {
				return err
			}
		}
	}
	return nil
}

func (v *ValueInfo) decodeType(b []byte) error {
	d := wire.NewDecoder(b)
	for d.More() {
		field, wtype, err := d.Next()
		if err != nil {
			return err
		}
		if field != 1 { // tensor_type
			if err := d.Skip(wtype); err != nil {
				return err
			}
			continue
		}
		tb, err := d.Bytes()
		if err != nil {
			return err
		}
		td := wire.NewDecoder(tb)
		for td.More() {
			tf, twt, err := td.Next()
			if err != nil {
				return err
			}
			switch tf {
			case 1:
				et, err := td.Int64()
				if err != nil {
					return err
				}
				v.ElemType = int(et)
			case 2:
				sb, err := td.Bytes()
				if err != nil {
					return err
				}
				if err := v.decodeShape(sb); err != nil {
					return err
				}
			default:
				if err := td.Skip(twt); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (v *ValueInfo) decodeShape(b []byte) error {
	d := wire.NewDecoder(b)
	for d.More() {
		field, wtype, err := d.Next()
		if err != nil {
			return err
		}
		if field != 1 {
			if err := d.Skip(wtype); err != nil {
				return err
			}
			continue
		}
		db, err := d.Bytes()
		if err != nil {
			return err
		}
		dd := wire.NewDecoder(db)
		var dim int64 = -1
		for dd.More() {
			df, dwt, err := dd.Next()
			if err != nil {
				return err
			}
			if df == 1 {
				if dim, err = dd.Int64(); err != nil {
					return err
				}
				continue
			}
			if err := dd.Skip(dwt); err != nil {
				return err
			}
		}
		v.Shape = append(v.Shape, dim)
	}
	return nil
}
